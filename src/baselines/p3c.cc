#include "baselines/p3c.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace mrcc {
namespace {

// A relevant interval on one attribute: [lo, hi) in value space plus the
// sorted ids of the points falling inside it.
struct Interval {
  size_t attr = 0;
  double lo = 0.0;
  double hi = 1.0;
  std::vector<uint32_t> members;
};

// A p-signature: intervals on distinct attributes plus its support set.
struct Signature {
  std::vector<uint32_t> intervals;  // Indices into the interval table.
  std::vector<uint32_t> support;
  uint64_t attr_mask = 0;
};

// Sorted intersection of two id lists.
std::vector<uint32_t> Intersect(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Chi-square uniformity p-value for bin counts restricted to `active`.
double UniformityPValue(const std::vector<uint32_t>& counts,
                        const std::vector<bool>& active) {
  size_t bins = 0;
  uint64_t total = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (active[b]) {
      ++bins;
      total += counts[b];
    }
  }
  if (bins < 2 || total == 0) return 1.0;
  const double expected =
      static_cast<double>(total) / static_cast<double>(bins);
  double chi2 = 0.0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (active[b]) {
      const double diff = static_cast<double>(counts[b]) - expected;
      chi2 += diff * diff / expected;
    }
  }
  return ChiSquareSurvival(static_cast<double>(bins - 1), chi2);
}

}  // namespace

P3c::P3c(P3cParams params) : params_(params) {}

Result<Clustering> P3c::Cluster(const Dataset& data) {
  StartClock();
  const size_t n = data.NumPoints();
  const size_t d = data.NumDims();
  if (d > 62) return Status::InvalidArgument("P3C supports d <= 62");

  // Sturges' rule.
  const size_t bins = std::max<size_t>(
      4, 1 + static_cast<size_t>(std::ceil(std::log2(std::max<size_t>(2, n)))));

  // Phase 1: relevant intervals per attribute.
  std::vector<Interval> intervals;
  for (size_t j = 0; j < d; ++j) {
    if (TimeExpired()) return TimeoutStatus();
    std::vector<uint32_t> counts(bins, 0);
    std::vector<std::vector<uint32_t>> bin_members(bins);
    for (size_t i = 0; i < n; ++i) {
      size_t b = static_cast<size_t>(data(i, j) * static_cast<double>(bins));
      if (b >= bins) b = bins - 1;
      ++counts[b];
      bin_members[b].push_back(static_cast<uint32_t>(i));
    }

    // Peel the largest bins until the remainder looks uniform.
    std::vector<bool> active(bins, true);
    std::vector<bool> marked(bins, false);
    while (UniformityPValue(counts, active) < params_.chi_square_alpha) {
      size_t best = bins;
      uint32_t best_count = 0;
      for (size_t b = 0; b < bins; ++b) {
        if (active[b] && counts[b] >= best_count) {
          best_count = counts[b];
          best = b;
        }
      }
      if (best == bins) break;
      active[best] = false;
      marked[best] = true;
    }

    // Merge adjacent marked bins into intervals.
    size_t b = 0;
    while (b < bins) {
      if (!marked[b]) {
        ++b;
        continue;
      }
      size_t end = b;
      while (end + 1 < bins && marked[end + 1]) ++end;
      Interval iv;
      iv.attr = j;
      iv.lo = static_cast<double>(b) / static_cast<double>(bins);
      iv.hi = static_cast<double>(end + 1) / static_cast<double>(bins);
      for (size_t bb = b; bb <= end; ++bb) {
        iv.members.insert(iv.members.end(), bin_members[bb].begin(),
                          bin_members[bb].end());
      }
      std::sort(iv.members.begin(), iv.members.end());
      if (iv.members.size() >= params_.min_support) {
        intervals.push_back(std::move(iv));
      }
      b = end + 1;
    }
  }

  Clustering out;
  out.labels.assign(n, kNoiseLabel);
  if (intervals.empty()) return out;

  // Phase 2: apriori-style signature growth with the Poisson expectation
  // test. Width of an interval = its marginal support fraction, so the
  // expected joint support under independence is n * prod(fractions).
  std::vector<Signature> current;
  for (uint32_t ivid = 0; ivid < intervals.size(); ++ivid) {
    Signature s;
    s.intervals.assign(1, ivid);
    s.support = intervals[ivid].members;
    s.attr_mask = uint64_t{1} << intervals[ivid].attr;
    current.push_back(std::move(s));
  }
  std::vector<Signature> maximal;
  while (!current.empty()) {
    if (TimeExpired()) return TimeoutStatus();
    std::vector<Signature> next;
    std::vector<bool> extended(current.size(), false);
    for (size_t s = 0; s < current.size(); ++s) {
      const Signature& sig = current[s];
      for (uint32_t ivid = sig.intervals.back() + 1;
           ivid < intervals.size(); ++ivid) {
        const Interval& iv = intervals[ivid];
        if ((sig.attr_mask >> iv.attr) & 1) continue;  // Attr already bound.
        std::vector<uint32_t> joint = Intersect(sig.support, iv.members);
        if (joint.size() < params_.min_support) continue;
        // Expected joint support under independence.
        const double expected = static_cast<double>(sig.support.size()) *
                                static_cast<double>(iv.members.size()) /
                                static_cast<double>(n);
        const double tail =
            PoissonSurvival(expected, static_cast<int64_t>(joint.size()));
        if (tail >= params_.poisson_threshold) continue;
        Signature grown;
        grown.intervals = sig.intervals;
        grown.intervals.push_back(ivid);
        grown.support = std::move(joint);
        grown.attr_mask = sig.attr_mask | (uint64_t{1} << iv.attr);
        next.push_back(std::move(grown));
        extended[s] = true;
        if (next.size() > params_.max_signatures) break;
      }
      if (next.size() > params_.max_signatures) break;
    }
    for (size_t s = 0; s < current.size(); ++s) {
      if (!extended[s] && current[s].intervals.size() >= 2) {
        maximal.push_back(std::move(current[s]));
      }
    }
    if (next.size() > params_.max_signatures) {
      // Lattice blow-up: keep the largest-support half and continue.
      std::sort(next.begin(), next.end(),
                [](const Signature& a, const Signature& b) {
                  return a.support.size() > b.support.size();
                });
      next.resize(params_.max_signatures / 2);
    }
    current = std::move(next);
  }
  if (maximal.empty()) return out;

  // Deduplicate cores: drop signatures whose support is (almost) contained
  // in a larger one's; then assign points to the most specific core.
  std::sort(maximal.begin(), maximal.end(),
            [](const Signature& a, const Signature& b) {
              if (a.intervals.size() != b.intervals.size()) {
                return a.intervals.size() > b.intervals.size();
              }
              return a.support.size() > b.support.size();
            });
  std::vector<Signature> cores;
  for (Signature& sig : maximal) {
    bool redundant = false;
    for (const Signature& core : cores) {
      const size_t overlap = Intersect(core.support, sig.support).size();
      if (static_cast<double>(overlap) >=
          0.5 * static_cast<double>(sig.support.size())) {
        redundant = true;
        break;
      }
    }
    if (!redundant) cores.push_back(std::move(sig));
  }

  out.clusters.resize(cores.size());
  for (size_t c = 0; c < cores.size(); ++c) {
    ClusterInfo& info = out.clusters[c];
    info.relevant_axes.assign(d, false);
    for (uint32_t ivid : cores[c].intervals) {
      info.relevant_axes[intervals[ivid].attr] = true;
    }
    for (uint32_t i : cores[c].support) {
      // Most specific core wins: cores are sorted by dimensionality, so
      // only unlabeled points are claimed.
      if (out.labels[i] == kNoiseLabel) {
        out.labels[i] = static_cast<int>(c);
      }
    }
  }
  return out;
}

}  // namespace mrcc

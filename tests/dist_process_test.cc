// Multi-process integration of the sharded build: real `mrcc-shard` /
// `mrcc-build` worker processes (found via the MRCC_TOOLS_DIR compile
// definition), including the crash harness — workers SIGKILLed mid-write
// must never leave an artifact the merger accepts, and resume must
// converge to the single-process result bit for bit.
//
// Labeled `distributed`; CI runs this binary in the distributed job
// (also under ASan+UBSan).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/mrcc.h"
#include "data/dataset_io.h"
#include "data/result_io.h"
#include "dist/sharded_build.h"
#include "test_util.h"

#ifndef MRCC_TOOLS_DIR
#error "MRCC_TOOLS_DIR must point at the built CLI tools"
#endif

namespace mrcc {
namespace dist {
namespace {

struct ToolProcess {
  pid_t pid = -1;
};

/// fork/execs a tool with --key=value args and optional extra
/// environment entries ("NAME=value").
ToolProcess SpawnTool(const std::string& tool,
                      const std::vector<std::string>& args,
                      const std::vector<std::string>& env = {}) {
  const std::string binary = std::string(MRCC_TOOLS_DIR) + "/" + tool;
  ToolProcess p;
  p.pid = ::fork();
  if (p.pid != 0) return p;
  for (const std::string& e : env) {
    const size_t eq = e.find('=');
    ::setenv(e.substr(0, eq).c_str(), e.substr(eq + 1).c_str(), 1);
  }
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  ::execv(binary.c_str(), argv.data());
  std::fprintf(stderr, "exec %s: %s\n", binary.c_str(), std::strerror(errno));
  ::_exit(127);
}

/// Waits for the process; returns its exit code (-signal when killed).
int Wait(const ToolProcess& p) {
  int status = 0;
  if (::waitpid(p.pid, &status, 0) < 0) return -1000;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1001;
}

class DistProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = testing::SmallClustered(2000, 6, 2, 41).data;
    dir_ = ::testing::TempDir() + "mrcc_dist_process_test";
    (void)std::system(("rm -rf " + dir_ + " && mkdir -p " + dir_).c_str());
    bin_path_ = dir_ + "/points.bin";
    ASSERT_TRUE(SaveBinary(data_, bin_path_).ok());

    options_.dataset_path = bin_path_;
    options_.work_dir = dir_;
    options_.num_shards = 3;
    options_.params.num_threads = 1;
    common_args_ = {"--data=" + bin_path_, "--work-dir=" + dir_,
                    "--shards=3"};

    Result<MrCCResult> baseline = MrCC(options_.params).Run(data_);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    baseline_ = std::make_unique<MrCCResult>(std::move(*baseline));
  }
  void TearDown() override {
    (void)std::system(("rm -rf " + dir_).c_str());
  }

  void ExpectMatchesBaseline(const MrCCResult& r) {
    EXPECT_EQ(r.clustering.labels, baseline_->clustering.labels);
    EXPECT_EQ(r.beta_to_cluster, baseline_->beta_to_cluster);
    EXPECT_EQ(r.beta_clusters.size(), baseline_->beta_clusters.size());
  }

  Dataset data_;
  std::string dir_;
  std::string bin_path_;
  ShardedBuildOptions options_;
  std::vector<std::string> common_args_;
  std::unique_ptr<MrCCResult> baseline_;
};

TEST_F(DistProcessTest, WorkerProcessesThenInProcessMergeMatchBaseline) {
  // All three workers at once — they share the manifest via its lock.
  std::vector<ToolProcess> workers;
  for (int shard = 0; shard < 3; ++shard) {
    std::vector<std::string> args = common_args_;
    args.push_back("--shard=" + std::to_string(shard));
    workers.push_back(SpawnTool("mrcc-shard", args));
    ASSERT_GT(workers.back().pid, 0);
  }
  for (const ToolProcess& w : workers) {
    EXPECT_EQ(Wait(w), 0);
  }
  Result<BuildManifest> manifest = PrepareManifest(options_);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  for (size_t i = 0; i < manifest->shards.size(); ++i) {
    EXPECT_TRUE(ShardComplete(options_, *manifest, i)) << "shard " << i;
  }
  Result<MrCCResult> merged = MergeShards(options_, *manifest);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ExpectMatchesBaseline(*merged);
}

TEST_F(DistProcessTest, BuildDriverEndToEndMatchesBaseline) {
  std::vector<std::string> args = common_args_;
  args.push_back("--workers=2");
  ASSERT_EQ(Wait(SpawnTool("mrcc-build", args)), 0);
  Result<BuildManifest> manifest = PrepareManifest(options_);
  ASSERT_TRUE(manifest.ok());
  Result<MrCCResult> merged = MergeShards(options_, *manifest);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ExpectMatchesBaseline(*merged);
}

TEST_F(DistProcessTest, RerunningWorkersIsIdempotent) {
  for (int round = 0; round < 2; ++round) {
    for (int shard = 0; shard < 3; ++shard) {
      std::vector<std::string> args = common_args_;
      args.push_back("--shard=" + std::to_string(shard));
      ASSERT_EQ(Wait(SpawnTool("mrcc-shard", args)), 0)
          << "round " << round << " shard " << shard;
    }
  }
  Result<BuildManifest> manifest = PrepareManifest(options_);
  ASSERT_TRUE(manifest.ok());
  Result<MrCCResult> merged = MergeShards(options_, *manifest);
  ASSERT_TRUE(merged.ok());
  ExpectMatchesBaseline(*merged);
}

TEST_F(DistProcessTest, WorkerWithWrongParamsIsRefused) {
  std::vector<std::string> args = common_args_;
  args.push_back("--shard=0");
  ASSERT_EQ(Wait(SpawnTool("mrcc-shard", args)), 0);
  // Same work dir, different result-affecting parameterization: the
  // params-hash check must refuse, not fold an incompatible shard.
  std::vector<std::string> wrong = common_args_;
  wrong.push_back("--shard=1");
  wrong.push_back("--resolutions=5");
  EXPECT_EQ(Wait(SpawnTool("mrcc-shard", wrong)), 1);
}

// The crash harness: SIGKILL a worker inside the built-but-unpublished
// window (MRCC_DIST_HOLD_PUBLISH_MS holds it there), then prove no torn
// artifact was left behind and a plain re-run converges bit-identically.
TEST_F(DistProcessTest, SigkilledWorkerLeavesNoAcceptedArtifactAndResumes) {
  std::vector<std::string> args = common_args_;
  args.push_back("--shard=1");
  const ToolProcess victim =
      SpawnTool("mrcc-shard", args, {"MRCC_DIST_HOLD_PUBLISH_MS=20000"});
  ASSERT_GT(victim.pid, 0);
  // Give the worker time to build its (small) shard and enter the hold,
  // then kill it dead. Even if the kill lands earlier, the invariant
  // under test — nothing published — is the same.
  ::usleep(1500 * 1000);
  ASSERT_EQ(::kill(victim.pid, SIGKILL), 0);
  EXPECT_EQ(Wait(victim), -SIGKILL);

  Result<BuildManifest> manifest = PrepareManifest(options_);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_FALSE(ShardComplete(options_, *manifest, 1))
      << "a SIGKILLed worker must not have published a verifying artifact";
  // Whatever the kill left (at worst a stale temp file), the artifact
  // path itself must not hold an acceptable file.
  EXPECT_FALSE(ReadShardArtifact(ShardArtifactPath(dir_, 1)).ok());

  // Plain re-run, no hold: every shard completes and the merged result
  // matches the single-process baseline exactly.
  for (int shard = 0; shard < 3; ++shard) {
    std::vector<std::string> rerun = common_args_;
    rerun.push_back("--shard=" + std::to_string(shard));
    ASSERT_EQ(Wait(SpawnTool("mrcc-shard", rerun)), 0) << "shard " << shard;
  }
  Result<MrCCResult> merged = MergeShards(options_, *manifest);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ExpectMatchesBaseline(*merged);
}

TEST_F(DistProcessTest, SigkilledBuildDriverResumesFromCompletedShards) {
  // Kill the whole driver mid-flight (workers run with a publish hold so
  // the kill window is wide), then re-run it normally.
  std::vector<std::string> args = common_args_;
  args.push_back("--workers=1");
  const ToolProcess driver =
      SpawnTool("mrcc-build", args, {"MRCC_DIST_HOLD_PUBLISH_MS=700"});
  ASSERT_GT(driver.pid, 0);
  ::usleep(1200 * 1000);
  // The driver may already have finished (slow machines vary); only the
  // still-running case exercises the kill, but both end states must
  // produce a converged second run.
  if (::kill(driver.pid, SIGKILL) == 0) {
    (void)Wait(driver);
    // Reap any orphaned worker's leftovers by simply re-running.
  }
  std::vector<std::string> rerun = common_args_;
  rerun.push_back("--workers=3");
  ASSERT_EQ(Wait(SpawnTool("mrcc-build", rerun)), 0);
  Result<BuildManifest> manifest = PrepareManifest(options_);
  ASSERT_TRUE(manifest.ok());
  Result<MrCCResult> merged = MergeShards(options_, *manifest);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ExpectMatchesBaseline(*merged);
}

TEST_F(DistProcessTest, MergeToolWritesResultAndLabels) {
  std::vector<std::string> args = common_args_;
  args.push_back("--workers=3");
  ASSERT_EQ(Wait(SpawnTool("mrcc-build", args)), 0);
  const std::string out = dir_ + "/result.json";
  const std::string labels = dir_ + "/labels.txt";
  std::vector<std::string> merge_args = common_args_;
  merge_args.push_back("--out=" + out);
  merge_args.push_back("--labels=" + labels);
  ASSERT_EQ(Wait(SpawnTool("mrcc-merge", merge_args)), 0);

  Result<std::vector<int>> loaded = LoadLabels(labels);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, baseline_->clustering.labels);
  struct stat st;
  ASSERT_EQ(::stat(out.c_str(), &st), 0);
  EXPECT_GT(st.st_size, 0);
}

}  // namespace
}  // namespace dist
}  // namespace mrcc

// Out-of-core build determinism: the chunked scan path must be invisible
// in the results. Whatever the chunk size (1, a prime that straddles every
// interesting boundary, the 4096 default, or the whole dataset), whatever
// the backend (memory, per-point file reads, block reads, mmap), and
// whatever the thread count, MrCC::Run produces bit-identical labels,
// β-clusters and stats-visible cluster geometry. This is the executable
// form of the ScanChunks contract in data/data_source.h: chunks arrive in
// order and cover the range exactly once.

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/mrcc.h"
#include "data/data_source.h"
#include "data/dataset_io.h"
#include "test_util.h"

namespace mrcc {
namespace {

/// Structural equality over everything the determinism contract covers.
void ExpectSameResult(const MrCCResult& a, const MrCCResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  EXPECT_EQ(a.beta_to_cluster, b.beta_to_cluster);
  ASSERT_EQ(a.beta_clusters.size(), b.beta_clusters.size());
  for (size_t i = 0; i < a.beta_clusters.size(); ++i) {
    EXPECT_EQ(a.beta_clusters[i].lower, b.beta_clusters[i].lower);
    EXPECT_EQ(a.beta_clusters[i].upper, b.beta_clusters[i].upper);
    EXPECT_EQ(a.beta_clusters[i].relevant, b.beta_clusters[i].relevant);
    EXPECT_EQ(a.beta_clusters[i].level, b.beta_clusters[i].level);
    EXPECT_EQ(a.beta_clusters[i].center_count, b.beta_clusters[i].center_count);
  }
  ASSERT_EQ(a.clustering.clusters.size(), b.clustering.clusters.size());
  for (size_t c = 0; c < a.clustering.clusters.size(); ++c) {
    EXPECT_EQ(a.clustering.clusters[c].relevant_axes,
              b.clustering.clusters[c].relevant_axes);
  }
}

class OutOfCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = testing::SmallClustered(3000, 6, 2, 29).data;
    bin_path_ = ::testing::TempDir() + "mrcc_out_of_core.bin";
    ASSERT_TRUE(SaveBinary(data_, bin_path_).ok());
  }
  void TearDown() override {
    fp::DisarmAll();
    std::remove(bin_path_.c_str());
  }

  Dataset data_;
  std::string bin_path_;
};

TEST_F(OutOfCoreTest, ChunkSizeNeverChangesResults) {
  MrCCParams params;
  params.num_threads = 2;
  const Result<MrCCResult> baseline = MrCC(params).Run(data_);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GT(baseline->clustering.NumClusters(), 0u);

  const size_t sizes[] = {1, 7, 4096, data_.NumPoints()};
  for (size_t chunk : sizes) {
    params.chunk_points = chunk;
    const Result<MrCCResult> r = MrCC(params).Run(data_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameResult(*r, *baseline, "chunk_points=" + std::to_string(chunk));
    EXPECT_EQ(r->stats.chunk_points, chunk);
    EXPECT_GE(r->stats.chunks_scanned,
              (data_.NumPoints() + chunk - 1) / chunk);
  }
}

TEST_F(OutOfCoreTest, EveryBackendMatchesTheInMemoryBuild) {
  MrCCParams params;
  params.chunk_points = 512;
  const Result<MrCCResult> baseline = MrCC(params).Run(data_);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (int threads : {1, 2, 4}) {
    params.num_threads = threads;
    const std::string tag = " threads=" + std::to_string(threads);

    Result<BinaryFileDataSource> file = BinaryFileDataSource::Open(bin_path_);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    Result<MrCCResult> r = MrCC(params).Run(*file);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameResult(*r, *baseline, "file" + tag);

    // A tiny block buffer (64 bytes -> forced re-blocking) must not show.
    Result<ChunkedBinaryDataSource> chunked =
        ChunkedBinaryDataSource::Open(bin_path_, 64);
    ASSERT_TRUE(chunked.ok()) << chunked.status().ToString();
    r = MrCC(params).Run(*chunked);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameResult(*r, *baseline, "chunked" + tag);

    Result<MmapFileDataSource> mapped = MmapFileDataSource::Open(bin_path_);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_TRUE(mapped->using_mmap());
    r = MrCC(params).Run(*mapped);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameResult(*r, *baseline, "mmap" + tag);
  }
}

TEST_F(OutOfCoreTest, MmapFallbackIsInvisibleInResults) {
  MrCCParams params;
  const Result<MrCCResult> baseline = MrCC(params).Run(data_);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  fp::ScopedArm arm("source.mmap");  // Kernel refuses the mapping.
  Result<MmapFileDataSource> source = MmapFileDataSource::Open(bin_path_);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_FALSE(source->using_mmap());
  EXPECT_GT(fp::HitCount("source.mmap"), 0u);

  const Result<MrCCResult> r = MrCC(params).Run(*source);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectSameResult(*r, *baseline, "mmap-fallback");
  EXPECT_FALSE(r->stats.degraded);
}

TEST_F(OutOfCoreTest, SanitizationStraddlingAChunkEdgeIsChunkInvariant) {
  // Poison a run of points (indices 6, 7, 8) so a chunk size of 7 puts
  // the bad run on both sides of a chunk boundary. Skip and clamp must
  // act per point, never per chunk.
  Dataset poisoned = data_;
  for (size_t i : {size_t{6}, size_t{7}, size_t{8}}) {
    poisoned(i, 0) = std::numeric_limits<double>::quiet_NaN();
    poisoned(i, 1) = 1.75;  // Clamps to just under 1.
  }

  for (BadPointPolicy policy : {BadPointPolicy::kSkip, BadPointPolicy::kClamp}) {
    MrCCParams params;
    params.bad_point_policy = policy;
    const Result<MrCCResult> baseline = MrCC(params).Run(poisoned);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    for (size_t chunk : {size_t{1}, size_t{7}, poisoned.NumPoints()}) {
      params.chunk_points = chunk;
      const Result<MrCCResult> r = MrCC(params).Run(poisoned);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ExpectSameResult(*r, *baseline,
                       "policy=" + std::string(BadPointPolicyName(policy)) +
                           " chunk=" + std::to_string(chunk));
      EXPECT_EQ(r->stats.points_skipped, baseline->stats.points_skipped);
      EXPECT_EQ(r->stats.points_clamped, baseline->stats.points_clamped);
    }
  }
}

TEST_F(OutOfCoreTest, MemoryBudgetShrinksChunksWithoutChangingResults) {
  MrCCParams params;
  params.num_threads = 2;
  const Result<MrCCResult> baseline = MrCC(params).Run(data_);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // A budget far below the raw input size: the automatic chunk size must
  // shrink below the 4096 default so both shards' buffers fit in half of
  // it, and the build must still match bit for bit.
  params.budget.max_memory_bytes = 64 * 1024;
  const Result<MrCCResult> r = MrCC(params).Run(data_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LT(r->stats.chunk_points, 4096u);
  EXPECT_GE(r->stats.chunk_points, 1u);
  EXPECT_GT(r->stats.chunks_scanned, baseline->stats.chunks_scanned);
  EXPECT_LE(r->stats.resident_point_bound,
            params.budget.max_memory_bytes / (2 * data_.NumDims() *
                                              sizeof(double)));
  EXPECT_EQ(r->clustering.labels, baseline->clustering.labels);
}

TEST_F(OutOfCoreTest, ChunkReadFaultFailsCleanlyOnEveryBackend) {
  fp::ScopedArm arm("source.chunk.read");
  MrCCParams params;

  const MemoryDataSource memory(data_);
  Result<MrCCResult> r = MrCC(params).Run(memory);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);

  Result<MmapFileDataSource> mapped = MmapFileDataSource::Open(bin_path_);
  ASSERT_TRUE(mapped.ok());
  r = MrCC(params).Run(*mapped);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace mrcc

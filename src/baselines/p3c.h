// P3C — Robust Projected Clustering (Moise, Sander & Ester, KIS 2008).
//
// A statistical bottom-up method. Per attribute, the value range is binned
// (Sturges' rule) and a chi-square uniformity test iteratively peels off
// the highest bins until the remainder looks uniform; the peeled, merged
// bins form the attribute's relevant intervals. Intervals are combined
// apriori-style into p-signatures: an interval extends a signature only if
// the observed joint support is significantly larger than expected under
// independence, judged by a Poisson tail at the user's Poisson threshold
// (the parameter the paper sweeps from 1e-1 to 1e-15). Maximal signatures
// become cluster cores; points are assigned to the most specific core that
// contains them, the rest is noise.

#pragma once

#include "core/subspace_clusterer.h"

namespace mrcc {

struct P3cParams {
  /// Significance of the chi-square uniformity test per attribute.
  double chi_square_alpha = 0.001;

  /// Poisson tail threshold for accepting a signature extension.
  double poisson_threshold = 1e-5;

  /// Minimum points supporting a signature (absolute floor).
  size_t min_support = 8;

  /// Caps the signature lattice to keep the combinatorial phase bounded.
  size_t max_signatures = 20000;
};

class P3c : public SubspaceClusterer {
 public:
  explicit P3c(P3cParams params = P3cParams());

  std::string name() const override { return "P3C"; }
  [[nodiscard]] Result<Clustering> Cluster(const Dataset& data) override;

 private:
  P3cParams params_;
};

}  // namespace mrcc


# Empty compiler generated dependencies file for soft_membership_test.
# This may be replaced when dependencies are built.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/memory.h"

namespace mrcc {
namespace {

// Every test owns the global trace state exclusively (ctest runs test
// *binaries* in parallel, not tests within one binary).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::Disable();
    Trace::Clear();
  }
  void TearDown() override {
    Trace::Disable();
    Trace::Clear();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(Trace::enabled());
  {
    MRCC_TRACE_SPAN("outer");
    MRCC_TRACE_SPAN_N("inner", 42);
  }
  EXPECT_EQ(Trace::NumSpans(), 0u);
}

TEST_F(TraceTest, DisabledSpansDoNotAllocate) {
  ASSERT_FALSE(Trace::enabled());
  // Warm up: the first span on this thread may lazily touch thread-local
  // infrastructure even while disabled (it must not, but don't let a
  // one-time cost hide a per-span leak either way).
  { MRCC_TRACE_SPAN("warmup"); }

  const int64_t before = MemoryTracker::CurrentBytes();
  for (int i = 0; i < 10000; ++i) {
    MRCC_TRACE_SPAN("hot");
    MRCC_TRACE_SPAN_N("hot_n", i);
  }
  EXPECT_EQ(MemoryTracker::CurrentBytes(), before)
      << "disabled spans must not allocate";
}

TEST_F(TraceTest, EnabledRecordsAndClearDrops) {
  Trace::Enable();
  { MRCC_TRACE_SPAN("a"); }
  { MRCC_TRACE_SPAN("b"); }
  EXPECT_EQ(Trace::NumSpans(), 2u);
  Trace::Clear();
  EXPECT_EQ(Trace::NumSpans(), 0u);
}

TEST_F(TraceTest, SpansNestWithScopes) {
  Trace::Enable();
  {
    MRCC_TRACE_SPAN("outer");
    {
      MRCC_TRACE_SPAN("inner");
    }
  }
  EXPECT_EQ(Trace::NumSpans(), 2u);

  const std::string json = Trace::ToChromeJson();
  const size_t outer = json.find("\"name\":\"outer\"");
  const size_t inner = json.find("\"name\":\"inner\"");
  ASSERT_NE(outer, std::string::npos);
  ASSERT_NE(inner, std::string::npos);
  // Spans are recorded at scope exit, so the inner span closes first.
  EXPECT_LT(inner, outer);
}

TEST_F(TraceTest, ChromeJsonShape) {
  Trace::Enable();
  { MRCC_TRACE_SPAN_N("stage", 7); }
  const std::string json = Trace::ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"n\":7}"), std::string::npos);
  // Valid JSON object start/end (full parse is bench_record_test's job).
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(TraceTest, NoPayloadSpanOmitsArgs) {
  Trace::Enable();
  { MRCC_TRACE_SPAN("bare"); }
  const std::string json = Trace::ToChromeJson();
  EXPECT_EQ(json.find("\"args\""), std::string::npos);
}

TEST_F(TraceTest, SetArgUpdatesPayload) {
  Trace::Enable();
  {
    TraceSpan span("late", -1);
    span.set_arg(123);
  }
  EXPECT_NE(Trace::ToChromeJson().find("\"args\":{\"n\":123}"),
            std::string::npos);
}

TEST_F(TraceTest, ThreadsGetDistinctTracks) {
  Trace::Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        MRCC_TRACE_SPAN("worker");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(Trace::NumSpans(),
            static_cast<size_t>(kThreads) * kSpansPerThread);

  // Each worker thread appears as its own tid in the export.
  const std::string json = Trace::ToChromeJson();
  int distinct_tids = 0;
  for (int tid = 0; tid < kThreads + 8; ++tid) {
    if (json.find("\"tid\":" + std::to_string(tid)) != std::string::npos) {
      ++distinct_tids;
    }
  }
  EXPECT_GE(distinct_tids, kThreads);
}

TEST_F(TraceTest, ConcurrentRecordingIsSafe) {
  Trace::Enable();
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        MRCC_TRACE_SPAN_N("race", t);
        if (i % 64 == 0) Trace::NumSpans();  // Concurrent reader.
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(Trace::NumSpans(), static_cast<size_t>(kThreads) * kIters);
}

TEST_F(TraceTest, DisableStopsRecordingButKeepsSpans) {
  Trace::Enable();
  { MRCC_TRACE_SPAN("kept"); }
  Trace::Disable();
  { MRCC_TRACE_SPAN("dropped"); }
  EXPECT_EQ(Trace::NumSpans(), 1u);
  EXPECT_NE(Trace::ToChromeJson().find("kept"), std::string::npos);
  EXPECT_EQ(Trace::ToChromeJson().find("dropped"), std::string::npos);
}

}  // namespace
}  // namespace mrcc

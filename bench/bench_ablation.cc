// Ablation studies of MrCC's design choices (DESIGN.md §5/§6):
//
//   1. Face-only vs full order-3 Laplacian mask. The paper (§III-B) keeps
//      only the center + 2d face weights so a convolution costs O(d); the
//      full mask "improves a little" but costs O(3^d). Measured here head
//      to head on the low-dimensional group-1 datasets.
//   2. The number of resolutions H at the paper's default vs deeper trees
//      (complementing the Fig. 4 sensitivity run with the same harness).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/mrcc.h"
#include "data/catalog.h"

namespace {

using namespace mrcc;
using namespace mrcc::bench;

RunMeasurement Measure(const MrCCParams& params, const LabeledDataset& ds,
                       const std::string& tag) {
  MrCC method(params);
  RunMeasurement m = MeasureRun(method, ds);
  m.method = tag;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  BenchRecorder recorder("ablation", options);
  std::printf("== MrCC ablations ==\n");
  std::printf("face-only vs full Laplacian mask | scale=%.3g\n",
              options.scale);

  ResultSink sink("ablation", options, &recorder);
  // Full mask is exponential in d: restrict to the group-1 datasets that
  // fit under kMaxFullMaskDims.
  for (size_t i = 0; i < 4; ++i) {  // 6d, 8d, 10d, 12d.
    const SyntheticConfig config = Group1Config(i, options.scale);
    const LabeledDataset dataset = MustGenerate(config, options.data_dir);

    MrCCParams face;
    sink.Add(Measure(face, dataset, "face"));

    MrCCParams full;
    full.full_mask = true;
    sink.Add(Measure(full, dataset, "full3^d"));
  }

  std::printf("-- resolution depth (14d base) --\n");
  const LabeledDataset base =
      MustGenerate(Base14dConfig(options.scale), options.data_dir);
  for (int h : {4, 6, 8, 12}) {
    MrCCParams params;
    params.num_resolutions = h;
    char tag[16];
    std::snprintf(tag, sizeof(tag), "H=%d", h);
    sink.Add(Measure(params, base, tag));
  }
  return recorder.Finish();
}

#include "data/data_source.h"

#include "common/failpoint.h"

namespace mrcc {
namespace {

Status CheckRange(size_t begin, size_t end, size_t num_points) {
  if (begin > end || end > num_points) {
    return Status::OutOfRange("scan range [" + std::to_string(begin) + ", " +
                              std::to_string(end) + ") outside dataset of " +
                              std::to_string(num_points) + " points");
  }
  return Status::OK();
}

class MemoryCursor : public DataSource::Cursor {
 public:
  MemoryCursor(const Dataset& data, size_t begin, size_t end)
      : data_(data), next_(begin), end_(end) {}

  bool Next(std::span<const double>* point) override {
    if (next_ >= end_) return false;
    *point = data_.Point(next_++);
    return true;
  }

  const Status& status() const override { return status_; }

 private:
  const Dataset& data_;
  size_t next_;
  const size_t end_;
  Status status_;
};

class FileCursor : public DataSource::Cursor {
 public:
  FileCursor(BinaryDatasetReader reader, size_t end)
      : reader_(std::move(reader)),
        end_(end),
        buffer_(reader_.num_dims()) {}

  bool Next(std::span<const double>* point) override {
    if (reader_.position() >= end_) return false;
    if (!reader_.Next(buffer_)) return false;
    *point = buffer_;
    return true;
  }

  const Status& status() const override { return reader_.status(); }

 private:
  BinaryDatasetReader reader_;
  const size_t end_;
  std::vector<double> buffer_;
};

}  // namespace

Result<std::unique_ptr<DataSource::Cursor>> MemoryDataSource::Scan(
    size_t begin, size_t end) const {
  MRCC_RETURN_IF_ERROR(CheckRange(begin, end, NumPoints()));
  MRCC_RETURN_IF_ERROR(fp::Maybe("source.scan"));
  return std::unique_ptr<Cursor>(new MemoryCursor(*data_, begin, end));
}

Result<BinaryFileDataSource> BinaryFileDataSource::Open(
    const std::string& path) {
  Result<BinaryDatasetReader> reader = BinaryDatasetReader::Open(path);
  if (!reader.ok()) return reader.status();
  BinaryFileDataSource source;
  source.path_ = path;
  source.num_points_ = reader->num_points();
  source.num_dims_ = reader->num_dims();
  return source;
}

Result<std::unique_ptr<DataSource::Cursor>> BinaryFileDataSource::Scan(
    size_t begin, size_t end) const {
  MRCC_RETURN_IF_ERROR(CheckRange(begin, end, num_points_));
  MRCC_RETURN_IF_ERROR(fp::Maybe("source.scan"));
  Result<BinaryDatasetReader> reader = BinaryDatasetReader::Open(path_);
  if (!reader.ok()) return reader.status();
  MRCC_RETURN_IF_ERROR(reader->SeekTo(begin));
  return std::unique_ptr<Cursor>(
      new FileCursor(std::move(*reader), end));
}

}  // namespace mrcc

#include "baselines/statpc.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace mrcc {
namespace {

// An axis-parallel hyper-rectangle with per-axis activation.
struct Rect {
  std::vector<bool> active;
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<uint32_t> support;  // Point ids inside.
  double log_tail = 0.0;          // log P(X >= support) under uniformity.

  double Volume() const {
    double v = 1.0;
    for (size_t j = 0; j < active.size(); ++j) {
      if (active[j]) v *= upper[j] - lower[j];
    }
    return v;
  }
};

// Support of `rect` restricted to `candidates`.
std::vector<uint32_t> SupportOf(const Dataset& data, const Rect& rect,
                                const std::vector<uint32_t>& candidates) {
  std::vector<uint32_t> out;
  for (uint32_t i : candidates) {
    bool inside = true;
    for (size_t j = 0; j < rect.active.size() && inside; ++j) {
      if (!rect.active[j]) continue;
      const double v = data(i, j);
      inside = v >= rect.lower[j] && v <= rect.upper[j];
    }
    if (inside) out.push_back(i);
  }
  return out;
}

}  // namespace

Statpc::Statpc(StatpcParams params) : params_(params) {}

Result<Clustering> Statpc::Cluster(const Dataset& data) {
  StartClock();
  const size_t n = data.NumPoints();
  const size_t d = data.NumDims();
  if (!(params_.alpha0 > 0.0 && params_.alpha0 < 1.0)) {
    return Status::InvalidArgument("alpha0 must be in (0, 1)");
  }
  if (params_.window <= 0.0 || params_.window >= 0.5) {
    return Status::InvalidArgument("window must be in (0, 0.5)");
  }
  const double log_alpha = std::log(params_.alpha0);

  Rng rng(params_.seed);
  const size_t anchors = std::min(params_.num_anchors, n);
  std::vector<size_t> anchor_ids = rng.SampleWithoutReplacement(n, anchors);

  std::vector<uint32_t> everyone(n);
  for (size_t i = 0; i < n; ++i) everyone[i] = static_cast<uint32_t>(i);

  // Candidate generation: greedy dimension-wise growth around each anchor.
  std::vector<Rect> candidates;
  for (size_t anchor : anchor_ids) {
    if (TimeExpired()) return TimeoutStatus();
    Rect rect;
    rect.active.assign(d, false);
    rect.lower.assign(d, 0.0);
    rect.upper.assign(d, 1.0);
    rect.support = everyone;

    // Try dimensions in order of how tightly the anchor's neighborhood
    // concentrates: smaller local spread first. (Deterministic greedy.)
    std::vector<size_t> order(d);
    for (size_t j = 0; j < d; ++j) order[j] = j;

    bool grown = true;
    while (grown) {
      grown = false;
      size_t best_dim = d;
      double best_log_tail = 1.0;
      // The extension must also improve on the rectangle's own tail.
      const double incumbent =
          rect.Volume() < 1.0
              ? LogBinomialSurvival(
                    static_cast<int64_t>(n), rect.Volume(),
                    static_cast<int64_t>(rect.support.size()))
              : 0.0;
      std::vector<uint32_t> best_support;
      Rect trial = rect;
      for (size_t j : order) {
        if (rect.active[j]) continue;
        const double center = data(anchor, j);
        trial.active = rect.active;
        trial.lower = rect.lower;
        trial.upper = rect.upper;
        trial.active[j] = true;
        trial.lower[j] = std::max(0.0, center - params_.window);
        trial.upper[j] = std::min(1.0, center + params_.window);
        std::vector<uint32_t> support = SupportOf(data, trial, rect.support);
        // One-sided significance of the support against uniformity.
        const double log_tail =
            LogBinomialSurvival(static_cast<int64_t>(n), trial.Volume(),
                                static_cast<int64_t>(support.size()));
        if (log_tail <= log_alpha &&
            (best_dim == d || log_tail < best_log_tail) &&
            log_tail < incumbent) {
          best_dim = j;
          best_log_tail = log_tail;
          best_support = std::move(support);
        }
      }
      if (best_dim < d) {
        rect.active[best_dim] = true;
        rect.lower[best_dim] =
            std::max(0.0, data(anchor, best_dim) - params_.window);
        rect.upper[best_dim] =
            std::min(1.0, data(anchor, best_dim) + params_.window);
        rect.support = std::move(best_support);
        rect.log_tail = best_log_tail;
        grown = true;
      }
    }
    if (std::count(rect.active.begin(), rect.active.end(), true) >= 2 &&
        rect.log_tail <= log_alpha) {
      candidates.push_back(std::move(rect));
    }
  }

  // Greedy non-redundant selection: most significant first, must explain
  // enough new points.
  std::sort(candidates.begin(), candidates.end(),
            [](const Rect& a, const Rect& b) {
              return a.log_tail < b.log_tail;
            });
  Clustering out;
  out.labels.assign(n, kNoiseLabel);
  std::vector<bool> explained(n, false);
  const size_t min_new = std::max<size_t>(
      4, static_cast<size_t>(params_.min_new_fraction * static_cast<double>(n)));
  for (const Rect& rect : candidates) {
    if (TimeExpired()) return TimeoutStatus();
    size_t fresh = 0;
    for (uint32_t i : rect.support) fresh += !explained[i];
    if (fresh < min_new) continue;
    const int label = static_cast<int>(out.clusters.size());
    ClusterInfo info;
    info.relevant_axes = rect.active;
    out.clusters.push_back(std::move(info));
    for (uint32_t i : rect.support) {
      if (!explained[i]) {
        explained[i] = true;
        out.labels[i] = label;
      }
    }
  }
  return out;
}

}  // namespace mrcc

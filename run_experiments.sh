#!/usr/bin/env bash
# Reproduces the full evaluation: build, tests, every figure bench (CSV +
# text + BenchRecord JSON), micro-benchmarks. Results land in ./results.
#
#   ./run_experiments.sh            # default 1/8-scale, ~30-60 min
#   MRCC_BENCH_FULL=1 ./run_experiments.sh   # paper scale (hours)
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build

# Shared dataset cache: benches key generated datasets on every generator
# parameter and reuse the files (results/data/*.bin + .axes), so datasets
# shared between benches — and between repeat invocations of this script —
# are generated exactly once instead of once per bench.
mkdir -p results results/data
export MRCC_BENCH_DATA_DIR="$PWD/results/data"
export MRCC_BENCH_BUDGET="${MRCC_BENCH_BUDGET:-300}"

ctest --test-dir build 2>&1 | tee test_output.txt

# Run every bench to completion even when one fails, collect each exit
# status explicitly (a bare `for b; do $b; done | tee` under set -e would
# either abort mid-suite or silently swallow the failure, depending on the
# shell), and fail the script at the end listing the broken benches.
benches=(bench_sensitivity bench_first_group bench_scale_points
         bench_scale_clusters bench_scale_dims bench_scale_noise
         bench_rotated bench_subspace_quality bench_real_data
         bench_ablation bench_microbench)

failed=()
: > bench_output.txt
for b in "${benches[@]}"; do
  echo "### $b" | tee -a bench_output.txt
  status=0
  "./build/bench/$b" --csv_dir="$PWD/results" \
    --json_out="results/BENCH_${b#bench_}.json" \
    >> bench_output.txt 2>&1 || status=$?
  if [[ $status -ne 0 ]]; then
    echo "FAILED: $b (exit $status)" | tee -a bench_output.txt
    failed+=("$b")
  fi
done

if [[ ${#failed[@]} -ne 0 ]]; then
  echo "bench failures: ${failed[*]}" >&2
  exit 1
fi
echo "done: test_output.txt, bench_output.txt, results/*.csv," \
     "results/BENCH_*.json"

// Negative-lint fixture: this file compiles, but the failpoint site name
// below is not in fp::AllSites() (kSites, src/common/failpoint.cc), so
// tools/mrcc_lint.py must reject it — the harness runs the linter on
// exactly this file and asserts a nonzero exit. At runtime the same typo
// would be an MRCC_DCHECK failure in debug and a silent never-fires in
// release, which is why the gate is compile-time.

#include "common/failpoint.h"

int main() {
  return mrcc::fp::Maybe("compile.fail.unknown_site").ok() ? 0 : 1;
}

// PCA preprocessing for very high-dimensional inputs.
//
// The paper scopes MrCC to ~5-30 axes and recommends: "if a dataset has
// more than 30 or so dimensions, it is possible to apply some distance
// preserving dimensionality reduction or feature selection algorithm,
// such as PCA or FDR, and then apply MrCC" (§I). This module provides that
// preprocessing step: principal component analysis via the library's
// Jacobi eigensolver, projecting onto the leading components and
// re-normalizing into the unit cube MrCC expects.

#pragma once

#include <cstddef>
#include <vector>

#include "common/linalg.h"
#include "common/status.h"
#include "data/dataset.h"

namespace mrcc {

/// A fitted PCA transform.
struct PcaModel {
  /// Per-axis mean of the training data (d entries).
  std::vector<double> mean;

  /// d x k matrix whose columns are the leading principal axes, ordered by
  /// decreasing eigenvalue.
  Matrix components;

  /// Variance along each kept component (k entries, descending).
  std::vector<double> eigenvalues;

  /// Sum of all d eigenvalues (total variance), for explained-variance
  /// ratios.
  double total_variance = 0.0;

  /// Number of kept components k.
  size_t num_components() const { return components.cols(); }

  /// Fraction of total variance captured by the kept components.
  double ExplainedVarianceRatio() const;

  /// Projects `data` (same d as the training data) onto the k components.
  /// The result is centered scores, NOT normalized — call
  /// NormalizeToUnitCube() before handing it to MrCC.
  [[nodiscard]] Result<Dataset> Project(const Dataset& data) const;
};

/// Fits PCA on `data`, keeping `target_dims` components
/// (1 <= target_dims <= d). Requires at least 2 points.
[[nodiscard]] Result<PcaModel> FitPca(const Dataset& data, size_t target_dims);

/// Convenience: fit, project and normalize to [0,1)^target_dims — the
/// exact preprocessing pipeline the paper suggests before MrCC.
[[nodiscard]] Result<Dataset> PcaReduce(const Dataset& data,
                                        size_t target_dims);

}  // namespace mrcc


#include "common/mdl.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace mrcc {
namespace {

TEST(MdlTest, EmptyPartitionCostsNothing) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_EQ(MdlPartitionCost(v, 1, 1), 0.0);
  EXPECT_EQ(MdlPartitionCost(v, 3, 3), 0.0);
}

TEST(MdlTest, HomogeneousPartitionIsCheap) {
  std::vector<double> same{5.0, 5.0, 5.0, 5.0};
  std::vector<double> spread{1.0, 4.0, 7.0, 10.0};
  EXPECT_LT(MdlPartitionCost(same, 0, 4), MdlPartitionCost(spread, 0, 4));
}

TEST(MdlTest, CostIsNonNegativeForNonNegativeValues) {
  std::vector<double> v{0.0, 1.5, 88.0, 100.0};
  EXPECT_GE(MdlPartitionCost(v, 0, v.size()), 0.0);
}

TEST(MdlTest, CutSeparatesTwoClearGroups) {
  // Low group {1,2,3}, high group {90, 92, 95} (sorted ascending).
  std::vector<double> v{1.0, 2.0, 3.0, 90.0, 92.0, 95.0};
  EXPECT_EQ(MdlBestCut(v), 3u);
  EXPECT_EQ(MdlThreshold(v), 90.0);
}

TEST(MdlTest, CutOnUniformValuesKeepsOnePartition) {
  std::vector<double> v{10.0, 10.0, 10.0, 10.0, 10.0};
  // All values identical: the single-partition encoding (p = 0) is optimal.
  EXPECT_EQ(MdlBestCut(v), 0u);
}

TEST(MdlTest, SingleElement) {
  std::vector<double> v{42.0};
  EXPECT_EQ(MdlBestCut(v), 0u);
  EXPECT_EQ(MdlThreshold(v), 42.0);
}

TEST(MdlTest, OneOutlierOnTop) {
  std::vector<double> v{1.0, 1.1, 0.9, 1.05, 50.0};
  std::sort(v.begin(), v.end());
  EXPECT_EQ(MdlBestCut(v), 4u);
  EXPECT_EQ(MdlThreshold(v), 50.0);
}

TEST(MdlTest, RelevanceLikeVectorsFromThePaper) {
  // Relevances in (0, 100]: a cluster tight on 3 of 8 axes produces three
  // high relevances over a uniform baseline near 100/6 ~ 16.7.
  std::vector<double> v{15.2, 16.1, 16.8, 17.4, 18.0, 85.0, 90.0, 96.0};
  const size_t cut = MdlBestCut(v);
  EXPECT_EQ(cut, 5u);
  EXPECT_EQ(MdlThreshold(v), 85.0);
}

TEST(MdlTest, CutIndexAlwaysValid) {
  // Property: for any sorted array, the cut is a valid index.
  std::vector<double> v;
  for (int i = 0; i < 64; ++i) v.push_back(static_cast<double>(i * i % 97));
  std::sort(v.begin(), v.end());
  const size_t cut = MdlBestCut(v);
  EXPECT_LT(cut, v.size());
}

}  // namespace
}  // namespace mrcc

// Fuzz-style corpus tests for the two parsers that consume external
// bytes: the binary dataset reader and the BenchRecord JSON reader.
//
// Contract under test (DESIGN.md §11): any byte sequence either parses
// or returns a non-OK Status. No crash, no abort, no unbounded
// allocation, no sanitizer report. Each committed seed in tests/corpus/
// is parsed as-is, then a deterministic 10,000-iteration loop mutates
// the seeds (byte flips, truncations, splices, extensions) and replays
// them. The Rng seed is fixed so a failing iteration reproduces exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset_io.h"
#include "data/dataset_reader.h"
#include "eval/bench_record.h"

#ifndef MRCC_CORPUS_DIR
#error "tests/CMakeLists.txt must define MRCC_CORPUS_DIR"
#endif

namespace mrcc {
namespace {

std::string CorpusPath(const std::string& rel) {
  return std::string(MRCC_CORPUS_DIR) + "/" + rel;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus seed: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Tests never scan a claimed geometry larger than this: a header the
// parser accepted may still describe more doubles than a unit test
// should materialize.
constexpr uint64_t kScanCap = 1u << 20;

/// Exercises both binary readers on `bytes`; the only acceptable
/// outcomes are success or a clean Status.
void DriveDatasetParsers(const std::string& bytes,
                         const std::string& tmp_path) {
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Result<BinaryDatasetReader> reader = BinaryDatasetReader::Open(tmp_path);
  if (reader.ok() && reader->num_dims() <= kScanCap &&
      reader->num_points() <= kScanCap) {
    std::vector<double> row(reader->num_dims());
    while (reader->Next(std::span<double>(row))) {
    }
    // A reader that opened cleanly must scan cleanly: Open() validated
    // the file size up front.
    EXPECT_TRUE(reader->status().ok())
        << reader->status().ToString();
  }
  std::vector<int> labels;
  const Result<Dataset> loaded = LoadBinary(tmp_path, &labels);
  if (loaded.ok()) {
    EXPECT_LE(loaded->NumPoints() * loaded->NumDims(),
              bytes.size() / sizeof(double));
  }
}

/// Applies 1–8 random byte-level mutations to `bytes`.
std::string Mutate(std::string bytes, Rng& rng) {
  const int edits = 1 + static_cast<int>(rng.UniformInt(8));
  for (int e = 0; e < edits; ++e) {
    switch (rng.UniformInt(5)) {
      case 0:  // Flip one bit.
        if (!bytes.empty()) {
          const size_t i = rng.UniformInt(bytes.size());
          bytes[i] = static_cast<char>(
              static_cast<unsigned char>(bytes[i]) ^
              (1u << rng.UniformInt(8)));
        }
        break;
      case 1:  // Overwrite one byte.
        if (!bytes.empty()) {
          bytes[rng.UniformInt(bytes.size())] =
              static_cast<char>(rng.UniformInt(256));
        }
        break;
      case 2:  // Truncate.
        if (!bytes.empty()) bytes.resize(rng.UniformInt(bytes.size()));
        break;
      case 3: {  // Insert a short run of random bytes.
        const size_t at = bytes.empty() ? 0 : rng.UniformInt(bytes.size());
        const size_t len = 1 + rng.UniformInt(8);
        std::string chunk(len, '\0');
        for (char& c : chunk) c = static_cast<char>(rng.UniformInt(256));
        bytes.insert(at, chunk);
        break;
      }
      case 4:  // Duplicate a slice to elsewhere (splice).
        if (bytes.size() >= 2) {
          const size_t from = rng.UniformInt(bytes.size() - 1);
          const size_t len =
              1 + rng.UniformInt(std::min<size_t>(16, bytes.size() - from));
          bytes.insert(rng.UniformInt(bytes.size()),
                       bytes.substr(from, len));
        }
        break;
    }
  }
  return bytes;
}

std::vector<std::string> LoadSeeds(const std::string& subdir,
                                   const std::vector<std::string>& names) {
  std::vector<std::string> seeds;
  for (const std::string& name : names) {
    seeds.push_back(ReadFileOrDie(CorpusPath(subdir + "/" + name)));
  }
  return seeds;
}

const std::vector<std::string>& DatasetSeedNames() {
  static const auto* names = new std::vector<std::string>{
      "valid_small.bin", "header_only.bin", "truncated.bin",
      "bad_magic.bin",   "bad_version.bin", "huge_counts.bin",
      "empty.bin",       "short_header.bin"};
  return *names;
}

const std::vector<std::string>& BenchRecordSeedNames() {
  static const auto* names = new std::vector<std::string>{
      "valid.json",           "unknown_keys.json", "wrong_version.json",
      "missing_version.json", "garbage.json",      "truncated.json",
      "empty.json",           "deep_nesting.json"};
  return *names;
}

TEST(CorpusDatasetTest, SeedsParseAsDocumented) {
  const std::string tmp = ::testing::TempDir() + "corpus_seed.bin";
  // The two well-formed seeds load; every malformed one fails cleanly.
  std::vector<int> labels;
  Result<Dataset> valid =
      LoadBinary(CorpusPath("dataset/valid_small.bin"), &labels);
  ASSERT_TRUE(valid.ok()) << valid.status().ToString();
  EXPECT_EQ(valid->NumPoints(), 5u);
  EXPECT_EQ(valid->NumDims(), 3u);
  EXPECT_EQ(labels.size(), 5u);

  Result<BinaryDatasetReader> reader =
      BinaryDatasetReader::Open(CorpusPath("dataset/header_only.bin"));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->num_points(), 0u);

  for (const char* bad : {"truncated.bin", "bad_magic.bin",
                          "bad_version.bin", "huge_counts.bin", "empty.bin",
                          "short_header.bin"}) {
    SCOPED_TRACE(bad);
    const std::string path = CorpusPath(std::string("dataset/") + bad);
    EXPECT_FALSE(BinaryDatasetReader::Open(path).ok());
    EXPECT_FALSE(LoadBinary(path).ok());
  }
  std::remove(tmp.c_str());
}

TEST(CorpusDatasetTest, TenThousandMutationsNeverCrashTheReaders) {
  const std::vector<std::string> seeds =
      LoadSeeds("dataset", DatasetSeedNames());
  const std::string tmp = ::testing::TempDir() + "corpus_mutated.bin";
  Rng rng(20260806);
  for (int i = 0; i < 10000; ++i) {
    SCOPED_TRACE("mutation iteration " + std::to_string(i));
    const std::string& seed = seeds[rng.UniformInt(seeds.size())];
    DriveDatasetParsers(Mutate(seed, rng), tmp);
  }
  std::remove(tmp.c_str());
}

TEST(CorpusBenchRecordTest, SeedsParseAsDocumented) {
  const Result<BenchRecord> valid =
      BenchRecord::FromJson(ReadFileOrDie(CorpusPath("bench_record/valid.json")));
  ASSERT_TRUE(valid.ok()) << valid.status().ToString();
  EXPECT_EQ(valid->bench, "scale_points");
  ASSERT_EQ(valid->entries.size(), 2u);
  EXPECT_TRUE(valid->entries[0].completed);
  EXPECT_FALSE(valid->entries[1].completed);
  EXPECT_EQ(valid->metrics.at("input.points_skipped"), 0);

  // Unknown keys are forward-compatible noise, not errors.
  const Result<BenchRecord> extended = BenchRecord::FromJson(
      ReadFileOrDie(CorpusPath("bench_record/unknown_keys.json")));
  ASSERT_TRUE(extended.ok()) << extended.status().ToString();
  EXPECT_EQ(extended->metrics.at("k"), 7);

  for (const char* bad :
       {"wrong_version.json", "missing_version.json", "garbage.json",
        "truncated.json", "empty.json"}) {
    SCOPED_TRACE(bad);
    const Result<BenchRecord> r = BenchRecord::FromJson(
        ReadFileOrDie(CorpusPath(std::string("bench_record/") + bad)));
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CorpusBenchRecordTest, TenThousandMutationsNeverCrashFromJson) {
  const std::vector<std::string> seeds =
      LoadSeeds("bench_record", BenchRecordSeedNames());
  Rng rng(20260806);
  int parsed_ok = 0;
  for (int i = 0; i < 10000; ++i) {
    SCOPED_TRACE("mutation iteration " + std::to_string(i));
    const std::string& seed = seeds[rng.UniformInt(seeds.size())];
    const Result<BenchRecord> r = BenchRecord::FromJson(Mutate(seed, rng));
    if (r.ok()) {
      ++parsed_ok;
      // Whatever parsed must re-serialize and round-trip.
      const Result<BenchRecord> again = BenchRecord::FromJson(r->ToJson());
      EXPECT_TRUE(again.ok()) << again.status().ToString();
    }
  }
  // Mostly the mutations break the JSON, but not always — some
  // iterations must survive or the loop is not exercising the success
  // path at all.
  EXPECT_GT(parsed_ok, 0);
}

TEST(CorpusRoundTripTest, MutatedDataThatLoadsAlsoRoundTrips) {
  // Deeper property for inputs that survive mutation: Save(Load(x))
  // loads again with identical geometry.
  const std::vector<std::string> seeds =
      LoadSeeds("dataset", DatasetSeedNames());
  const std::string tmp = ::testing::TempDir() + "corpus_rt.bin";
  const std::string tmp2 = ::testing::TempDir() + "corpus_rt2.bin";
  Rng rng(424242);
  for (int i = 0; i < 2000; ++i) {
    const std::string mutated =
        Mutate(seeds[rng.UniformInt(seeds.size())], rng);
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(),
                static_cast<std::streamsize>(mutated.size()));
    }
    const Result<Dataset> first = LoadBinary(tmp);
    if (!first.ok()) continue;
    if (first->NumPoints() * first->NumDims() > kScanCap) continue;
    ASSERT_TRUE(SaveBinary(*first, tmp2).ok());
    const Result<Dataset> second = LoadBinary(tmp2);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ(first->NumPoints(), second->NumPoints());
    EXPECT_EQ(first->NumDims(), second->NumDims());
  }
  std::remove(tmp.c_str());
  std::remove(tmp2.c_str());
}

}  // namespace
}  // namespace mrcc

#include "core/counting_tree.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/check.h"

namespace mrcc {
namespace {

// Debug-build hook shared by Builder::Finish and MergeTree: a structural
// violation at these points is a construction bug, so abort with the
// invariant's message rather than return a Status the caller would have
// to treat as an input error.
void DCheckInvariants(const CountingTree& tree) {
#ifndef NDEBUG
  const Status v = tree.ValidateInvariants();
  if (!v.ok()) {
    internal::CheckFailed(__FILE__, __LINE__, "ValidateInvariants()",
                          v.message().c_str());
  }
#else
  (void)tree;
#endif
}

}  // namespace

CountingTree::Builder::Builder(size_t num_dims, int num_resolutions) {
  if (num_resolutions < 3) {
    status_ = Status::InvalidArgument("num_resolutions (H) must be >= 3");
    return;
  }
  if (num_dims == 0 || num_dims > kMaxDims) {
    status_ = Status::InvalidArgument(
        "dimensionality must be in [1, " + std::to_string(kMaxDims) + "]");
    return;
  }
  // Clamp to the deepest meaningful resolution (see kMaxResolutions): the
  // paper likewise allows truncating the tree to fit resources.
  const int h_effective = std::min(num_resolutions, kMaxResolutions + 1);
  tree_.reset(new CountingTree(num_dims, h_effective));
  tree_->by_level_.resize(h_effective);
  tree_->NewNode(1, std::vector<uint64_t>(num_dims, 0));
}

Status CountingTree::Builder::Add(std::span<const double> point) {
  MRCC_RETURN_IF_ERROR(status_);
  if (point.size() != tree_->num_dims_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  for (double v : point) {
    if (!(v >= 0.0 && v < 1.0)) {
      return Status::InvalidArgument(
          "points must be normalized to [0,1)^d before insertion");
    }
  }
  tree_->InsertPoint(point);
  return Status::OK();
}

Result<CountingTree> CountingTree::Builder::Finish() && {
  MRCC_RETURN_IF_ERROR(status_);
  DCheckInvariants(*tree_);
  return std::move(*tree_);
}

Result<CountingTree> CountingTree::Build(const Dataset& data,
                                         int num_resolutions) {
  if (!data.InUnitCube()) {
    return Status::InvalidArgument(
        "dataset must be normalized to [0,1)^d before building the tree");
  }
  Builder builder(data.NumDims(), num_resolutions);
  MRCC_RETURN_IF_ERROR(builder.status());
  for (size_t i = 0; i < data.NumPoints(); ++i) {
    MRCC_RETURN_IF_ERROR(builder.Add(data.Point(i)));
  }
  return std::move(builder).Finish();
}

int64_t CountingTree::FindInNode(const Node& node, uint64_t loc) const {
  if (node.index != nullptr) {
    auto it = node.index->find(loc);
    return it != node.index->end() ? static_cast<int64_t>(it->second) : -1;
  }
  for (size_t c = 0; c < node.cells.size(); ++c) {
    if (node.cells[c].loc == loc) return static_cast<int64_t>(c);
  }
  return -1;
}

uint32_t CountingTree::FindOrCreateInNode(uint32_t node_idx, uint64_t loc) {
  Node& node = nodes_[node_idx];
  const int64_t existing = FindInNode(node, loc);
  if (existing >= 0) return static_cast<uint32_t>(existing);

  const uint32_t cell_idx = static_cast<uint32_t>(node.cells.size());
  Cell cell;
  cell.loc = loc;
  node.cells.push_back(cell);
  node.half.resize(node.half.size() + num_dims_, 0);
  if (node.index != nullptr) {
    node.index->emplace(loc, cell_idx);
  } else if (node.cells.size() > kIndexThreshold) {
    // The node outgrew linear search: build the loc index now.
    node.index = std::make_unique<std::unordered_map<uint64_t, uint32_t>>();
    node.index->reserve(node.cells.size() * 2);
    for (uint32_t c = 0; c < node.cells.size(); ++c) {
      node.index->emplace(node.cells[c].loc, c);
    }
  }
  return cell_idx;
}

void CountingTree::InsertPoint(std::span<const double> point) {
  const size_t d = num_dims_;
  const int deepest = num_resolutions_ - 1;

  // Binary expansion of each coordinate, one level beyond the deepest so
  // half-space counts at the deepest level are available:
  // bits[h-1][j] = h-th bit of point[j] (level-h position bit).
  // Extracted by repeated doubling, which is exact for doubles.
  std::vector<uint8_t> bits(static_cast<size_t>(deepest + 1) * d);
  for (size_t j = 0; j < d; ++j) {
    double r = point[j];
    for (int h = 1; h <= deepest + 1; ++h) {
      r *= 2.0;
      const uint8_t bit = r >= 1.0 ? 1 : 0;
      r -= bit;
      bits[static_cast<size_t>(h - 1) * d + j] = bit;
    }
  }

  uint32_t node_idx = 0;  // Root node (level-1 cells).
  for (int h = 1; h <= deepest; ++h) {
    const uint8_t* level_bits = &bits[static_cast<size_t>(h - 1) * d];
    const uint8_t* next_bits = &bits[static_cast<size_t>(h) * d];

    uint64_t loc = 0;
    for (size_t j = 0; j < d; ++j) {
      loc |= static_cast<uint64_t>(level_bits[j]) << j;
    }

    const uint32_t cell_idx = FindOrCreateInNode(node_idx, loc);
    {
      Node& node = nodes_[node_idx];
      node.cells[cell_idx].n += 1;
      // The point is in the lower half of this cell along e_j exactly when
      // its next-level bit is 0.
      uint32_t* half = &node.half[cell_idx * d];
      for (size_t j = 0; j < d; ++j) {
        if (next_bits[j] == 0) half[j] += 1;
      }
    }

    if (h < deepest) {
      int32_t child = nodes_[node_idx].cells[cell_idx].child_node;
      if (child < 0) {
        std::vector<uint64_t> child_base =
            CellCoords(nodes_[node_idx], nodes_[node_idx].cells[cell_idx]);
        child = static_cast<int32_t>(NewNode(h + 1, std::move(child_base)));
        nodes_[node_idx].cells[cell_idx].child_node = child;
      }
      node_idx = static_cast<uint32_t>(child);
    }
  }
  ++total_points_;
}

uint32_t CountingTree::NewNode(int level, std::vector<uint64_t> base_coords) {
  const uint32_t idx = static_cast<uint32_t>(nodes_.size());
  Node node;
  node.level = level;
  node.base_coords = std::move(base_coords);
  nodes_.push_back(std::move(node));
  by_level_[level].push_back(idx);
  return idx;
}

const std::vector<uint32_t>& CountingTree::NodesAtLevel(int h) const {
  MRCC_DCHECK_GE(h, 1);
  MRCC_DCHECK_LT(h, num_resolutions_);
  return by_level_[h];
}

size_t CountingTree::NumCellsAtLevel(int h) const {
  size_t count = 0;
  for (uint32_t idx : NodesAtLevel(h)) count += nodes_[idx].cells.size();
  return count;
}

std::vector<uint64_t> CountingTree::CellCoords(const Node& node,
                                               const Cell& cell) const {
  std::vector<uint64_t> coords(num_dims_);
  for (size_t j = 0; j < num_dims_; ++j) {
    coords[j] = node.base_coords[j] * 2 + ((cell.loc >> j) & 1);
  }
  return coords;
}

bool CountingTree::FindCell(int level, const std::vector<uint64_t>& coords,
                            CellRef* ref) const {
  MRCC_DCHECK_GE(level, 1);
  MRCC_DCHECK_LT(level, num_resolutions_);
  MRCC_DCHECK_EQ(coords.size(), num_dims_);
  uint32_t node_idx = 0;
  for (int l = 1; l <= level; ++l) {
    // Position bits of the level-l ancestor inside its parent.
    uint64_t loc = 0;
    const int shift = level - l;
    for (size_t j = 0; j < num_dims_; ++j) {
      loc |= ((coords[j] >> shift) & 1) << j;
    }
    const Node& node = nodes_[node_idx];
    const int64_t cell_idx = FindInNode(node, loc);
    if (cell_idx < 0) return false;
    if (l == level) {
      ref->node = node_idx;
      ref->cell = static_cast<uint32_t>(cell_idx);
      return true;
    }
    const Cell& cell = node.cells[static_cast<size_t>(cell_idx)];
    if (cell.child_node < 0) return false;
    node_idx = static_cast<uint32_t>(cell.child_node);
  }
  return false;  // Unreachable.
}

bool CountingTree::FaceNeighbor(int level,
                                const std::vector<uint64_t>& coords,
                                size_t axis, int dir, CellRef* ref) const {
  MRCC_DCHECK(dir == -1 || dir == 1);
  MRCC_DCHECK_LT(axis, num_dims_);
  const uint64_t max_coord = (uint64_t{1} << level) - 1;
  if (dir < 0 && coords[axis] == 0) return false;
  if (dir > 0 && coords[axis] == max_coord) return false;
  std::vector<uint64_t> neighbor = coords;
  neighbor[axis] += dir;
  return FindCell(level, neighbor, ref);
}

uint32_t CountingTree::FaceNeighborCount(int level,
                                         const std::vector<uint64_t>& coords,
                                         size_t axis, int dir) const {
  CellRef ref;
  return FaceNeighbor(level, coords, axis, dir, &ref) ? cell(ref).n : 0;
}

void CountingTree::ResetUsedFlags() {
  for (Node& node : nodes_) {
    for (Cell& cell : node.cells) cell.used = false;
  }
}

Status CountingTree::DropDeepestLevel() {
  const int deepest = num_resolutions_ - 1;
  if (deepest <= 2) {
    return Status::InvalidArgument(
        "cannot drop below the paper's minimum of H = 3 resolutions");
  }
  // Unlink the dropped level from its parent cells, then compact the node
  // pool. Compaction preserves relative order, so the surviving pool has
  // exactly the layout a build with the smaller H would have produced —
  // which keeps every downstream stage bit-identical to that build.
  for (uint32_t idx : by_level_[static_cast<size_t>(deepest - 1)]) {
    for (Cell& cell : nodes_[idx].cells) cell.child_node = -1;
  }
  std::vector<int32_t> remap(nodes_.size(), -1);
  std::vector<Node> kept;
  kept.reserve(nodes_.size() - by_level_[static_cast<size_t>(deepest)].size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].level >= deepest) continue;
    remap[i] = static_cast<int32_t>(kept.size());
    kept.push_back(std::move(nodes_[i]));
  }
  for (Node& node : kept) {
    for (Cell& cell : node.cells) {
      if (cell.child_node >= 0) {
        cell.child_node = remap[static_cast<size_t>(cell.child_node)];
        MRCC_DCHECK_GE(cell.child_node, 0);
      }
    }
  }
  nodes_ = std::move(kept);
  by_level_.pop_back();
  for (std::vector<uint32_t>& level : by_level_) {
    for (uint32_t& idx : level) {
      idx = static_cast<uint32_t>(remap[idx]);
    }
  }
  --num_resolutions_;
  DCheckInvariants(*this);
  return Status::OK();
}

Status CountingTree::ValidateInvariants() const {
  const auto fail = [](std::string msg) {
    return Status::Internal("tree invariant violated: " + std::move(msg));
  };
  const size_t d = num_dims_;
  if (d == 0 || d > kMaxDims) return fail("dimensionality out of range");
  if (num_resolutions_ < 3) return fail("fewer than 3 resolutions");
  if (nodes_.empty()) return fail("no root node");
  if (by_level_.size() != static_cast<size_t>(num_resolutions_)) {
    return fail("by-level index has wrong resolution count");
  }

  const Node& root = nodes_[0];
  if (root.level != 1) return fail("root node is not at level 1");
  for (uint64_t c : root.base_coords) {
    if (c != 0) return fail("root base coordinates are not zero");
  }

  // parent_refs[m]: number of cells pointing at node m as their child.
  std::vector<uint32_t> parent_refs(nodes_.size(), 0);
  uint64_t root_points = 0;
  std::unordered_set<uint64_t> locs;
  for (size_t m = 0; m < nodes_.size(); ++m) {
    const Node& node = nodes_[m];
    const std::string where = "node " + std::to_string(m) + ": ";
    if (node.level < 1 || node.level >= num_resolutions_) {
      return fail(where + "level " + std::to_string(node.level) +
                  " out of range");
    }
    if (node.base_coords.size() != d) {
      return fail(where + "base coordinate dimensionality mismatch");
    }
    const uint64_t max_base = uint64_t{1} << (node.level - 1);
    for (uint64_t c : node.base_coords) {
      if (c >= max_base) return fail(where + "base coordinate out of range");
    }
    if (node.half.size() != node.cells.size() * d) {
      return fail(where + "half-space count array has wrong size");
    }
    locs.clear();
    for (size_t c = 0; c < node.cells.size(); ++c) {
      const Cell& cell = node.cells[c];
      const std::string cell_where =
          where + "cell " + std::to_string(c) + ": ";
      if (d < 64 && (cell.loc >> d) != 0) {
        return fail(cell_where + "loc has bits above dimension " +
                    std::to_string(d));
      }
      if (!locs.insert(cell.loc).second) {
        return fail(cell_where + "duplicate loc among siblings");
      }
      if (cell.n == 0) return fail(cell_where + "materialized cell is empty");
      for (size_t j = 0; j < d; ++j) {
        if (node.half[c * d + j] > cell.n) {
          return fail(cell_where + "half-space count " +
                      std::to_string(node.half[c * d + j]) +
                      " exceeds cell count " + std::to_string(cell.n) +
                      " on axis " + std::to_string(j));
        }
      }
      if (cell.child_node >= 0) {
        const auto child_idx = static_cast<size_t>(cell.child_node);
        if (child_idx >= nodes_.size()) {
          return fail(cell_where + "dangling child pointer");
        }
        if (child_idx == 0) return fail(cell_where + "root used as child");
        const Node& child = nodes_[child_idx];
        if (child.level != node.level + 1) {
          return fail(cell_where + "child level is not parent level + 1");
        }
        const std::vector<uint64_t> coords = CellCoords(node, cell);
        if (child.base_coords != coords) {
          return fail(cell_where + "child base coordinates do not match");
        }
        uint64_t child_sum = 0;
        for (const Cell& cc : child.cells) child_sum += cc.n;
        if (child_sum != cell.n) {
          return fail(cell_where + "child counts sum to " +
                      std::to_string(child_sum) + ", expected " +
                      std::to_string(cell.n));
        }
        parent_refs[child_idx] += 1;
      }
      if (m == 0) root_points += cell.n;
    }
  }
  for (size_t m = 1; m < nodes_.size(); ++m) {
    if (parent_refs[m] != 1) {
      return fail("node " + std::to_string(m) + " referenced by " +
                  std::to_string(parent_refs[m]) + " parent cells");
    }
  }
  if (root_points != total_points_) {
    return fail("root counts sum to " + std::to_string(root_points) +
                ", total_points is " + std::to_string(total_points_));
  }

  // Every node must be registered exactly once, at its own level.
  std::vector<uint32_t> level_refs(nodes_.size(), 0);
  for (size_t h = 0; h < by_level_.size(); ++h) {
    for (uint32_t idx : by_level_[h]) {
      if (idx >= nodes_.size()) return fail("by-level index out of range");
      if (nodes_[idx].level != static_cast<int>(h)) {
        return fail("node " + std::to_string(idx) +
                    " registered at the wrong level");
      }
      level_refs[idx] += 1;
    }
  }
  for (size_t m = 0; m < nodes_.size(); ++m) {
    if (level_refs[m] != 1) {
      return fail("node " + std::to_string(m) + " appears " +
                  std::to_string(level_refs[m]) + " times in by-level index");
    }
  }
  return Status::OK();
}

size_t CountingTree::MemoryBytes() const {
  size_t bytes = sizeof(*this) + nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    bytes += node.cells.capacity() * sizeof(Cell);
    bytes += node.half.capacity() * sizeof(uint32_t);
    bytes += node.base_coords.capacity() * sizeof(uint64_t);
    if (node.index != nullptr) {
      // Rough hash-map footprint: buckets plus one heap node per entry.
      bytes += node.index->bucket_count() * sizeof(void*) +
               node.index->size() *
                   (sizeof(std::pair<uint64_t, uint32_t>) + 2 * sizeof(void*));
    }
  }
  for (const auto& level : by_level_) {
    bytes += level.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace mrcc

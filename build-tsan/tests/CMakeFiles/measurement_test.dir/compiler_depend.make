# Empty compiler generated dependencies file for measurement_test.
# This may be replaced when dependencies are built.

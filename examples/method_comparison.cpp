// Side-by-side comparison of every implemented method on one synthetic
// dataset — a miniature of the paper's Fig. 5 matrix for interactive use.
//
//   ./examples/method_comparison [num_points] [num_dims] [num_clusters]

#include <cstdio>
#include <cstdlib>

#include "baselines/clusterer.h"
#include "data/generator.h"
#include "eval/measurement.h"

int main(int argc, char** argv) {
  mrcc::SyntheticConfig config;
  config.name = "comparison";
  config.num_points = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 15000;
  config.num_dims = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;
  config.num_clusters = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;
  config.noise_fraction = 0.15;
  config.min_cluster_dims =
      config.num_dims > 3 ? config.num_dims - 3 : 1;
  config.max_cluster_dims = config.num_dims - 1;
  config.seed = 7;

  mrcc::Result<mrcc::LabeledDataset> dataset =
      mrcc::GenerateSynthetic(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %zu points, %zu dims, %zu clusters, 15%% noise\n\n",
              config.num_points, config.num_dims, config.num_clusters);

  mrcc::MethodTuning tuning;
  tuning.num_clusters = config.num_clusters;
  tuning.noise_fraction = config.noise_fraction;
  for (const std::string& name : mrcc::AllMethodNames()) {
    mrcc::Result<std::unique_ptr<mrcc::SubspaceClusterer>> method =
        mrcc::MakeClusterer(name, tuning);
    if (!method.ok()) continue;
    const mrcc::RunMeasurement m =
        mrcc::MeasureRun(**method, *dataset, /*time_budget_seconds=*/300.0);
    std::printf("%s\n", mrcc::FormatMeasurementRow(m).c_str());
    std::fflush(stdout);
  }
  std::printf(
      "\nMrCC needs neither the number of clusters nor per-dataset "
      "threshold tuning — the baselines above were handed the true k.\n");
  return 0;
}

#include "common/mdl.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace mrcc {

double MdlPartitionCost(const std::vector<double>& values, size_t begin,
                        size_t end) {
  MRCC_DCHECK_LE(begin, end);
  MRCC_DCHECK_LE(end, values.size());
  if (begin == end) return 0.0;
  double mean = 0.0;
  for (size_t i = begin; i < end; ++i) mean += values[i];
  mean /= static_cast<double>(end - begin);
  double cost = std::log2(1.0 + std::fabs(mean));
  for (size_t i = begin; i < end; ++i) {
    cost += std::log2(1.0 + std::fabs(values[i] - mean));
  }
  return cost;
}

size_t MdlBestCut(const std::vector<double>& values) {
  MRCC_CHECK(!values.empty());
  const size_t n = values.size();

  // Prefix sums make each candidate cut O(1) for the means; the deviation
  // terms still need a pass, giving O(n^2) total. n is the dataset
  // dimensionality (<= a few dozen), so this is negligible.
  size_t best_cut = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t p = 0; p < n; ++p) {
    const double cost =
        MdlPartitionCost(values, 0, p) + MdlPartitionCost(values, p, n);
    if (cost < best_cost) {
      best_cost = cost;
      best_cut = p;
    }
  }
  return best_cut;
}

double MdlThreshold(const std::vector<double>& sorted_values) {
  // The caller contract is ascending order — on unsorted input the cut
  // index is still in range but the threshold is meaningless.
  MRCC_DCHECK(std::is_sorted(sorted_values.begin(), sorted_values.end()));
  const size_t cut = MdlBestCut(sorted_values);
  MRCC_CHECK_LT(cut, sorted_values.size());
  return sorted_values[cut];
}

}  // namespace mrcc

#include "data/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

namespace mrcc {
namespace {

SyntheticConfig BaseConfig() {
  SyntheticConfig c;
  c.num_points = 5000;
  c.num_dims = 8;
  c.num_clusters = 4;
  c.noise_fraction = 0.2;
  c.min_cluster_dims = 3;
  c.max_cluster_dims = 7;
  c.seed = 11;
  return c;
}

TEST(GeneratorTest, ProducesRequestedShape) {
  Result<LabeledDataset> r = GenerateSynthetic(BaseConfig());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data.NumPoints(), 5000u);
  EXPECT_EQ(r->data.NumDims(), 8u);
  EXPECT_EQ(r->truth.NumClusters(), 4u);
  EXPECT_EQ(r->truth.labels.size(), 5000u);
}

TEST(GeneratorTest, DataInsideUnitCube) {
  Result<LabeledDataset> r = GenerateSynthetic(BaseConfig());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->data.InUnitCube());
}

TEST(GeneratorTest, DeterministicForEqualSeeds) {
  Result<LabeledDataset> a = GenerateSynthetic(BaseConfig());
  Result<LabeledDataset> b = GenerateSynthetic(BaseConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->truth.labels, b->truth.labels);
  for (size_t i = 0; i < a->data.NumPoints(); ++i) {
    for (size_t j = 0; j < a->data.NumDims(); ++j) {
      ASSERT_DOUBLE_EQ(a->data(i, j), b->data(i, j));
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  SyntheticConfig c2 = BaseConfig();
  c2.seed = 12;
  Result<LabeledDataset> a = GenerateSynthetic(BaseConfig());
  Result<LabeledDataset> b = GenerateSynthetic(c2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->truth.labels, b->truth.labels);
}

TEST(GeneratorTest, NoiseFractionApproximatelyRespected) {
  Result<LabeledDataset> r = GenerateSynthetic(BaseConfig());
  ASSERT_TRUE(r.ok());
  const double frac =
      static_cast<double>(r->truth.NumNoisePoints()) / r->data.NumPoints();
  EXPECT_NEAR(frac, 0.2, 0.005);
}

TEST(GeneratorTest, ClusterDimensionalityWithinBounds) {
  Result<LabeledDataset> r = GenerateSynthetic(BaseConfig());
  ASSERT_TRUE(r.ok());
  for (const ClusterInfo& info : r->truth.clusters) {
    const size_t delta = info.Dimensionality();
    EXPECT_GE(delta, 3u);
    EXPECT_LE(delta, 7u);
  }
}

TEST(GeneratorTest, ClusterMembersAreConcentratedOnRelevantAxes) {
  Result<LabeledDataset> r = GenerateSynthetic(BaseConfig());
  ASSERT_TRUE(r.ok());
  // For each cluster, the member variance along relevant axes must be
  // far below the uniform variance (1/12) and the irrelevant axes near it.
  for (size_t c = 0; c < r->truth.NumClusters(); ++c) {
    const auto members = r->truth.Members(static_cast<int>(c));
    ASSERT_GT(members.size(), 10u);
    for (size_t j = 0; j < r->data.NumDims(); ++j) {
      double mean = 0.0, sq = 0.0;
      for (size_t i : members) {
        mean += r->data(i, j);
        sq += r->data(i, j) * r->data(i, j);
      }
      mean /= static_cast<double>(members.size());
      const double var = sq / static_cast<double>(members.size()) - mean * mean;
      if (r->truth.clusters[c].relevant_axes[j]) {
        EXPECT_LT(var, 0.01) << "cluster " << c << " axis " << j;
      } else {
        EXPECT_GT(var, 0.04) << "cluster " << c << " axis " << j;
      }
    }
  }
}

TEST(GeneratorTest, TruthValidates) {
  Result<LabeledDataset> r = GenerateSynthetic(BaseConfig());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truth.Validate(r->data.NumPoints(), r->data.NumDims()).ok());
}

TEST(GeneratorTest, ExplicitClusterWeightsControlSizes) {
  SyntheticConfig c = BaseConfig();
  c.num_clusters = 2;
  c.noise_fraction = 0.0;
  c.cluster_weights = {3.0, 1.0};
  Result<LabeledDataset> r = GenerateSynthetic(c);
  ASSERT_TRUE(r.ok());
  const double s0 = static_cast<double>(r->truth.Members(0).size());
  const double s1 = static_cast<double>(r->truth.Members(1).size());
  EXPECT_NEAR(s0 / s1, 3.0, 0.1);
}

TEST(GeneratorTest, RotationKeepsCubeAndLabels) {
  SyntheticConfig c = BaseConfig();
  c.num_rotations = 4;
  Result<LabeledDataset> r = GenerateSynthetic(c);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->data.InUnitCube());
  EXPECT_EQ(r->truth.labels.size(), c.num_points);
  // Rotation must change the coordinates relative to the unrotated twin.
  SyntheticConfig plain = BaseConfig();
  Result<LabeledDataset> base = GenerateSynthetic(plain);
  ASSERT_TRUE(base.ok());
  bool any_diff = false;
  for (size_t j = 0; j < c.num_dims && !any_diff; ++j) {
    if (std::fabs(r->data(0, j) - base->data(0, j)) > 1e-6) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// Invalid-config sweep.
class GeneratorValidationTest
    : public ::testing::TestWithParam<SyntheticConfig> {};

TEST_P(GeneratorValidationTest, RejectsInvalidConfig) {
  Result<LabeledDataset> r = GenerateSynthetic(GetParam());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

SyntheticConfig Invalid(void (*mutate)(SyntheticConfig&)) {
  SyntheticConfig c = BaseConfig();
  mutate(c);
  return c;
}

INSTANTIATE_TEST_SUITE_P(
    BadConfigs, GeneratorValidationTest,
    ::testing::Values(
        Invalid([](SyntheticConfig& c) { c.num_dims = 0; }),
        Invalid([](SyntheticConfig& c) { c.num_points = 0; }),
        Invalid([](SyntheticConfig& c) { c.noise_fraction = 1.0; }),
        Invalid([](SyntheticConfig& c) { c.noise_fraction = -0.1; }),
        Invalid([](SyntheticConfig& c) { c.min_cluster_dims = 0; }),
        Invalid([](SyntheticConfig& c) {
          c.min_cluster_dims = 5;
          c.max_cluster_dims = 3;
        }),
        Invalid([](SyntheticConfig& c) { c.min_stddev = 0.0; }),
        Invalid([](SyntheticConfig& c) { c.max_stddev = 0.2; }),
        Invalid([](SyntheticConfig& c) { c.cluster_weights = {1.0}; }),
        Invalid([](SyntheticConfig& c) {
          c.cluster_weights = {1.0, 1.0, 1.0, -1.0};
        })));

TEST(Kdd08LikeTest, ShapeAndImbalance) {
  Kdd08LikeConfig c;
  c.num_points = 10000;
  Result<Kdd08LikeDataset> r = GenerateKdd08Like(c);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->labeled.data.NumPoints(), 10000u);
  EXPECT_EQ(r->labeled.data.NumDims(), 25u);
  EXPECT_EQ(r->class_labels.size(), 10000u);
  const size_t malignant = static_cast<size_t>(
      std::count(r->class_labels.begin(), r->class_labels.end(), 1));
  // Heavily imbalanced: near the configured 1%.
  EXPECT_GT(malignant, 20u);
  EXPECT_LT(malignant, 400u);
}

TEST(Kdd08LikeTest, MalignantPointsBelongToMalignantClusters) {
  Kdd08LikeConfig c;
  c.num_points = 8000;
  Result<Kdd08LikeDataset> r = GenerateKdd08Like(c);
  ASSERT_TRUE(r.ok());
  const int first_malignant = static_cast<int>(c.normal_clusters);
  for (size_t i = 0; i < r->class_labels.size(); ++i) {
    const int cluster = r->labeled.truth.labels[i];
    if (r->class_labels[i] == 1) {
      EXPECT_GE(cluster, first_malignant);
    } else {
      EXPECT_LT(cluster, first_malignant);
    }
  }
}

}  // namespace
}  // namespace mrcc

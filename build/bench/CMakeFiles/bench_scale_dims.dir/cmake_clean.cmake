file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_dims.dir/bench_scale_dims.cc.o"
  "CMakeFiles/bench_scale_dims.dir/bench_scale_dims.cc.o.d"
  "bench_scale_dims"
  "bench_scale_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "baselines/epch.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace mrcc {
namespace {

// One d0-dimensional histogram over an axis combination.
struct Histogram {
  std::vector<size_t> axes;     // The d0 axes it projects onto.
  std::vector<uint32_t> counts; // bins_per_axis^d0 cells.
  std::vector<int16_t> region;  // Cell -> dense region id, -1 sparse.
  int num_regions = 0;
};

// Flat cell index of a point in `hist`.
size_t CellOf(const Dataset& data, size_t point, const Histogram& hist,
              size_t bins) {
  size_t cell = 0;
  for (size_t axis : hist.axes) {
    size_t b = static_cast<size_t>(data(point, axis) * static_cast<double>(bins));
    if (b >= bins) b = bins - 1;
    cell = cell * bins + b;
  }
  return cell;
}

// Labels dense cells (count above the noise floor) and connects adjacent
// dense cells into regions via BFS over axis-neighbors.
void FindDenseRegions(Histogram* hist, size_t bins, double sigmas) {
  const size_t cells = hist->counts.size();
  double mean = 0.0;
  for (uint32_t c : hist->counts) mean += c;
  mean /= static_cast<double>(cells);
  double var = 0.0;
  for (uint32_t c : hist->counts) {
    const double diff = static_cast<double>(c) - mean;
    var += diff * diff;
  }
  const double stddev = std::sqrt(var / static_cast<double>(cells));
  const double threshold = mean + sigmas * stddev;

  hist->region.assign(cells, -1);
  hist->num_regions = 0;
  const size_t d0 = hist->axes.size();
  std::vector<size_t> stack;
  std::vector<size_t> coord(d0);
  for (size_t start = 0; start < cells; ++start) {
    if (hist->region[start] >= 0 ||
        static_cast<double>(hist->counts[start]) <= threshold) {
      continue;
    }
    const int id = hist->num_regions++;
    stack.assign(1, start);
    hist->region[start] = static_cast<int16_t>(id);
    while (!stack.empty()) {
      const size_t cell = stack.back();
      stack.pop_back();
      // Decode mixed-radix coordinates.
      size_t rem = cell;
      for (size_t a = d0; a-- > 0;) {
        coord[a] = rem % bins;
        rem /= bins;
      }
      // Axis-adjacent neighbors.
      size_t stride = 1;
      for (size_t a = d0; a-- > 0;) {
        for (int step : {-1, +1}) {
          if ((step < 0 && coord[a] == 0) ||
              (step > 0 && coord[a] + 1 >= bins)) {
            continue;
          }
          const size_t neighbor =
              cell + static_cast<size_t>(static_cast<int64_t>(stride) * step);
          if (hist->region[neighbor] < 0 &&
              static_cast<double>(hist->counts[neighbor]) > threshold) {
            hist->region[neighbor] = static_cast<int16_t>(id);
            stack.push_back(neighbor);
          }
        }
        stride *= bins;
      }
    }
  }
}

// Fraction of histograms where two signatures agree on a dense region
// (both non-null and equal), over those where either is non-null.
double SignatureSimilarity(const std::vector<int16_t>& a,
                           const std::vector<int16_t>& b) {
  size_t match = 0, active = 0;
  for (size_t h = 0; h < a.size(); ++h) {
    if (a[h] >= 0 || b[h] >= 0) {
      ++active;
      if (a[h] >= 0 && a[h] == b[h]) ++match;
    }
  }
  return active > 0
             ? static_cast<double>(match) / static_cast<double>(active)
             : 0.0;
}

}  // namespace

Epch::Epch(EpchParams params) : params_(params) {}

Result<Clustering> Epch::Cluster(const Dataset& data) {
  StartClock();
  const size_t n = data.NumPoints();
  const size_t d = data.NumDims();
  const size_t d0 = params_.histogram_dims;
  const size_t bins = params_.bins_per_axis;
  if (d0 < 1 || d0 > 2) {
    return Status::InvalidArgument("EPCH supports histogram_dims in {1, 2}");
  }
  if (d0 > d) return Status::InvalidArgument("histogram_dims > data dims");
  if (bins < 2) return Status::InvalidArgument("bins_per_axis must be >= 2");

  // Build all C(d, d0) histograms.
  std::vector<Histogram> histograms;
  if (d0 == 1) {
    for (size_t j = 0; j < d; ++j) {
      histograms.push_back({{j}, std::vector<uint32_t>(bins, 0), {}, 0});
    }
  } else {
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = a + 1; b < d; ++b) {
        histograms.push_back(
            {{a, b}, std::vector<uint32_t>(bins * bins, 0), {}, 0});
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (Histogram& hist : histograms) {
      ++hist.counts[CellOf(data, i, hist, bins)];
    }
  }
  for (Histogram& hist : histograms) {
    FindDenseRegions(&hist, bins, params_.threshold_sigmas);
  }
  if (TimeExpired()) return TimeoutStatus();

  // Per-point signatures.
  const size_t num_hists = histograms.size();
  std::vector<std::vector<int16_t>> signatures(
      n, std::vector<int16_t>(num_hists, -1));
  for (size_t i = 0; i < n; ++i) {
    for (size_t h = 0; h < num_hists; ++h) {
      signatures[i][h] =
          histograms[h].region[CellOf(data, i, histograms[h], bins)];
    }
  }

  // Leader-style grouping of signatures into prototypes.
  struct Prototype {
    std::vector<int16_t> signature;
    std::vector<size_t> members;
  };
  std::vector<Prototype> prototypes;
  const size_t max_prototypes = std::max<size_t>(4 * params_.max_clusters, 16);
  std::vector<int> proto_of(n, -1);
  for (size_t i = 0; i < n; ++i) {
    if (TimeExpired()) return TimeoutStatus();
    // Points with an entirely null signature are immediate outliers.
    const bool has_region = std::any_of(signatures[i].begin(),
                                        signatures[i].end(),
                                        [](int16_t r) { return r >= 0; });
    if (!has_region) continue;
    double best = -1.0;
    int best_p = -1;
    for (size_t p = 0; p < prototypes.size(); ++p) {
      const double sim =
          SignatureSimilarity(signatures[i], prototypes[p].signature);
      if (sim > best) {
        best = sim;
        best_p = static_cast<int>(p);
      }
    }
    if (best >= params_.outlier_threshold && best_p >= 0) {
      prototypes[static_cast<size_t>(best_p)].members.push_back(i);
      proto_of[i] = best_p;
    } else if (prototypes.size() < max_prototypes) {
      proto_of[i] = static_cast<int>(prototypes.size());
      prototypes.push_back({signatures[i], {i}});
    }
  }

  // Keep the max_clusters largest prototypes as clusters.
  std::vector<size_t> order(prototypes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return prototypes[a].members.size() > prototypes[b].members.size();
  });
  const size_t kept =
      std::min<size_t>(params_.max_clusters, prototypes.size());

  Clustering out;
  out.labels.assign(n, kNoiseLabel);
  out.clusters.resize(kept);
  for (size_t rank = 0; rank < kept; ++rank) {
    const Prototype& proto = prototypes[order[rank]];
    for (size_t i : proto.members) out.labels[i] = static_cast<int>(rank);
    // Relevant axes: axes of histograms where the prototype pins a region.
    ClusterInfo& info = out.clusters[rank];
    info.relevant_axes.assign(d, false);
    for (size_t h = 0; h < num_hists; ++h) {
      if (proto.signature[h] >= 0) {
        for (size_t axis : histograms[h].axes) info.relevant_axes[axis] = true;
      }
    }
  }
  return out;
}

}  // namespace mrcc

#include "common/metrics.h"

#include <bit>
#include <cstdio>

namespace mrcc {
namespace {

/// Bucket index for `value`: 0 for v <= 0, otherwise 1 + floor(log2 v)
/// clamped to the last bucket — i.e. bucket b holds 2^(b-1) <= v < 2^b.
size_t BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  const size_t b =
      static_cast<size_t>(std::bit_width(static_cast<uint64_t>(value)));
  return b < Histogram::kNumBuckets ? b : Histogram::kNumBuckets - 1;
}

/// Lock-free min/max fold used by concurrent Record() calls.
void AtomicMin(std::atomic<int64_t>* slot, int64_t value) {
  int64_t seen = slot->load(std::memory_order_relaxed);
  while (value < seen &&
         !slot->compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<int64_t>* slot, int64_t value) {
  int64_t seen = slot->load(std::memory_order_relaxed);
  while (value > seen &&
         !slot->compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

void AppendInt64Map(const std::map<std::string, int64_t>& values,
                    std::string* out) {
  *out += '{';
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) *out += ',';
    *out += '"' + name + "\":" + std::to_string(value);
    first = false;
  }
  *out += '}';
}

}  // namespace

void Histogram::Record(int64_t value) {
  // First value initializes min/max; the count_ == 0 test races benignly:
  // both racers run the CAS folds, which are order-insensitive.
  if (count_.load(std::memory_order_relaxed) == 0) {
    int64_t expected = 0;
    min_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
    expected = 0;
    max_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.min = min_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  snapshot.buckets.resize(kNumBuckets);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    snapshot.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  // Trim trailing empty buckets so exports stay small.
  while (!snapshot.buckets.empty() && snapshot.buckets.back() == 0) {
    snapshot.buckets.pop_back();
  }
  return snapshot;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (std::atomic<int64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

std::map<std::string, int64_t> MetricsSnapshot::Flatten() const {
  std::map<std::string, int64_t> flat;
  for (const auto& [name, value] : counters) flat[name] = value;
  for (const auto& [name, value] : gauges) flat[name] = value;
  for (const auto& [name, value] : gauge_maxes) flat[name + ".max"] = value;
  for (const auto& [name, h] : histograms) {
    flat[name + ".count"] = h.count;
    flat[name + ".sum"] = h.sum;
    flat[name + ".min"] = h.min;
    flat[name + ".max"] = h.max;
  }
  return flat;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":";
  AppendInt64Map(counters, &out);
  out += ",\"gauges\":{";
  bool first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    out += '"' + name + "\":{\"value\":" + std::to_string(value) +
           ",\"max\":" + std::to_string(gauge_maxes.at(name)) + '}';
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    out += '"' + name + "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.min) +
           ",\"max\":" + std::to_string(h.max) + ",\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ',';
      out += std::to_string(h.buckets[b]);
    }
    out += "]}";
    first = false;
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;  // Never freed:
  return *registry;  // instruments may be touched during process exit.
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
    snapshot.gauge_maxes[name] = gauge->max();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

}  // namespace mrcc

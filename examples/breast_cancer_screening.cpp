// Real-data scenario (the paper's §IV-G): cluster breast-cancer screening
// features and check how well the discovered structure separates the
// malignant from the normal ROIs.
//
// The original experiment used the (proprietary) Siemens KDD Cup 2008
// training data — 25 features per ROI over four breast/view sub-datasets.
// This example runs on the KDD08-like substitute described in DESIGN.md:
// the same shape (~25k ROIs x 25 features, ~1% malignant) with correlated
// feature clusters per population.
//
//   ./examples/breast_cancer_screening [scale]

#include <cstdio>
#include <cstdlib>

#include "core/mrcc.h"
#include "data/catalog.h"
#include "data/generator.h"
#include "eval/quality.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::strtod(argv[1], nullptr) : 0.25;

  for (const mrcc::Kdd08LikeConfig& config : mrcc::Kdd08LikeConfigs(scale)) {
    mrcc::Result<mrcc::Kdd08LikeDataset> dataset =
        mrcc::GenerateKdd08Like(config);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s: %s\n", config.name.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    size_t malignant = 0;
    for (int c : dataset->class_labels) malignant += (c == 1);
    std::printf("%-16s %zu ROIs x %zu features (%zu malignant)\n",
                config.name.c_str(), dataset->labeled.data.NumPoints(),
                dataset->labeled.data.NumDims(), malignant);

    mrcc::MrCC method;  // Parameter-free apart from the fixed defaults.
    mrcc::Result<mrcc::MrCCResult> result = method.Run(dataset->labeled.data);
    if (!result.ok()) {
      std::fprintf(stderr, "  MrCC failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }

    // Score the clusters against the malignant/normal ground truth, the
    // way the Cup data was evaluated.
    const mrcc::QualityReport q = mrcc::EvaluateAgainstClasses(
        result->clustering, dataset->class_labels);
    std::printf(
        "  MrCC: %zu clusters in %.3f s  |  class Quality %.4f "
        "(precision %.4f, recall %.4f)\n",
        result->clustering.NumClusters(), result->stats.total_seconds,
        q.quality, q.precision, q.recall);

    // How pure is each cluster with respect to malignancy?
    for (size_t c = 0; c < result->clustering.NumClusters(); ++c) {
      const auto members = result->clustering.Members(static_cast<int>(c));
      size_t bad = 0;
      for (size_t i : members) bad += (dataset->class_labels[i] == 1);
      std::printf("    cluster %zu: %6zu ROIs, %5.2f%% malignant\n", c,
                  members.size(),
                  members.empty()
                      ? 0.0
                      : 100.0 * static_cast<double>(bad) / members.size());
    }
  }
  std::printf(
      "\nClusters with elevated malignant share flag the ROI groups a "
      "radiologist should review first.\n");
  return 0;
}

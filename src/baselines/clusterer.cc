#include "baselines/clusterer.h"

#include "baselines/clique.h"
#include "baselines/doc.h"
#include "baselines/epch.h"
#include "baselines/harp.h"
#include "baselines/lac.h"
#include "baselines/orclus.h"
#include "baselines/kmeans.h"
#include "baselines/p3c.h"
#include "baselines/proclus.h"
#include "baselines/statpc.h"
#include "core/mrcc.h"

namespace mrcc {

std::vector<std::string> AllMethodNames() {
  return {"MrCC",   "LAC",     "EPCH",   "CFPC", "HARP",    "P3C",
          "CLIQUE", "PROCLUS", "ORCLUS", "DOC",  "FastDOC", "STATPC",
          "k-means"};
}

std::vector<std::string> PaperMethodNames() {
  return {"MrCC", "LAC", "EPCH", "CFPC", "HARP", "P3C"};
}

Result<std::unique_ptr<SubspaceClusterer>> MakeClusterer(
    const std::string& name, const MethodTuning& tuning) {
  if (name == "MrCC") {
    return std::unique_ptr<SubspaceClusterer>(new MrCC());
  }
  if (name == "LAC") {
    LacParams p;
    p.num_clusters = tuning.num_clusters;
    p.seed = tuning.seed;
    return std::unique_ptr<SubspaceClusterer>(new Lac(p));
  }
  if (name == "EPCH") {
    EpchParams p;
    p.max_clusters = tuning.num_clusters;
    return std::unique_ptr<SubspaceClusterer>(new Epch(p));
  }
  if (name == "CFPC" || name == "DOC" || name == "FastDOC") {
    DocParams p;
    p.variant = name == "CFPC"  ? DocVariant::kCfpc
                : name == "DOC" ? DocVariant::kDoc
                                : DocVariant::kFastDoc;
    p.num_clusters = tuning.num_clusters;
    p.seed = tuning.seed;
    return std::unique_ptr<SubspaceClusterer>(new Doc(p));
  }
  if (name == "HARP") {
    HarpParams p;
    p.num_clusters = tuning.num_clusters;
    p.max_noise_fraction = tuning.noise_fraction;
    return std::unique_ptr<SubspaceClusterer>(new Harp(p));
  }
  if (name == "P3C") {
    return std::unique_ptr<SubspaceClusterer>(new P3c());
  }
  if (name == "CLIQUE") {
    return std::unique_ptr<SubspaceClusterer>(new Clique());
  }
  if (name == "PROCLUS") {
    ProclusParams p;
    p.num_clusters = tuning.num_clusters;
    p.avg_dims = tuning.avg_cluster_dims;
    p.seed = tuning.seed;
    return std::unique_ptr<SubspaceClusterer>(new Proclus(p));
  }
  if (name == "STATPC") {
    StatpcParams p;
    p.seed = tuning.seed;
    return std::unique_ptr<SubspaceClusterer>(new Statpc(p));
  }
  if (name == "k-means") {
    KMeansParams p;
    p.num_clusters = tuning.num_clusters;
    p.seed = tuning.seed;
    return std::unique_ptr<SubspaceClusterer>(new KMeans(p));
  }
  if (name == "ORCLUS") {
    OrclusParams p;
    p.num_clusters = tuning.num_clusters;
    p.subspace_dims = tuning.avg_cluster_dims;
    p.seed = tuning.seed;
    return std::unique_ptr<SubspaceClusterer>(new Orclus(p));
  }
  return Status::InvalidArgument("unknown clustering method: " + name);
}

}  // namespace mrcc

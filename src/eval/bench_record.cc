#include "eval/bench_record.h"

#include <fstream>
#include <sstream>

#include "common/fs.h"
#include "common/json.h"

namespace mrcc {

BenchEntry ToBenchEntry(const RunMeasurement& m) {
  BenchEntry entry;
  entry.method = m.method;
  entry.dataset = m.dataset;
  entry.completed = m.completed;
  entry.error = m.error;
  entry.seconds = m.seconds;
  entry.peak_heap_bytes = m.peak_heap_bytes;
  entry.quality = m.quality.quality;
  entry.subspace_quality = m.quality.subspace_quality;
  entry.clusters_found = m.clusters_found;
  return entry;
}

std::string BenchRecord::ToJson() const {
  std::string out = "{\"schema_version\":" + std::to_string(schema_version);
  out += ",\"bench\":";
  AppendJsonEscaped(bench, &out);
  out += ",\"scale\":";
  AppendJsonDouble(scale, &out);
  out += ",\"time_budget_seconds\":";
  AppendJsonDouble(time_budget_seconds, &out);
  out += ",\"num_threads_available\":" + std::to_string(num_threads_available);
  out += ",\"wall_seconds\":";
  AppendJsonDouble(wall_seconds, &out);
  out += ",\"peak_rss_bytes\":" + std::to_string(peak_rss_bytes);
  out += ",\"entries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    if (i > 0) out += ',';
    out += "{\"method\":";
    AppendJsonEscaped(e.method, &out);
    out += ",\"dataset\":";
    AppendJsonEscaped(e.dataset, &out);
    out += ",\"completed\":";
    out += e.completed ? "true" : "false";
    out += ",\"seconds\":";
    AppendJsonDouble(e.seconds, &out);
    out += ",\"peak_heap_bytes\":" + std::to_string(e.peak_heap_bytes);
    out += ",\"quality\":";
    AppendJsonDouble(e.quality, &out);
    out += ",\"subspace_quality\":";
    AppendJsonDouble(e.subspace_quality, &out);
    out += ",\"clusters_found\":" + std::to_string(e.clusters_found);
    out += ",\"source\":";
    AppendJsonEscaped(e.source, &out);
    out += ",\"read_ahead\":" + std::to_string(e.read_ahead);
    out += ",\"error\":";
    AppendJsonEscaped(e.error, &out);
    out += '}';
  }
  out += "],\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : metrics) {
    if (!first) out += ',';
    AppendJsonEscaped(name, &out);
    out += ':' + std::to_string(value);
    first = false;
  }
  out += "}}";
  return out;
}

Result<BenchRecord> BenchRecord::FromJson(const std::string& json) {
  Result<JsonValue> parsed = ParseJson(json);
  MRCC_RETURN_IF_ERROR(parsed.status());
  const JsonValue& root = *parsed;
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("BenchRecord JSON must be an object");
  }

  const JsonValue* version = root.Find("schema_version");
  if (version == nullptr || version->kind != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument("BenchRecord JSON lacks schema_version");
  }
  if (static_cast<int>(version->number_value) != kSchemaVersion) {
    return Status::InvalidArgument(
        "unsupported BenchRecord schema_version " +
        std::to_string(static_cast<int>(version->number_value)) +
        " (reader supports " + std::to_string(kSchemaVersion) + ")");
  }

  BenchRecord record;
  record.bench = JsonStringOr(root.Find("bench"), "");
  record.scale = JsonNumberOr(root.Find("scale"), 0.0);
  record.time_budget_seconds = JsonNumberOr(root.Find("time_budget_seconds"), 0.0);
  record.num_threads_available =
      static_cast<int>(JsonNumberOr(root.Find("num_threads_available"), 0.0));
  record.wall_seconds = JsonNumberOr(root.Find("wall_seconds"), 0.0);
  record.peak_rss_bytes =
      static_cast<int64_t>(JsonNumberOr(root.Find("peak_rss_bytes"), 0.0));

  if (const JsonValue* entries = root.Find("entries");
      entries != nullptr && entries->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& element : entries->array) {
      if (element.kind != JsonValue::Kind::kObject) {
        return Status::InvalidArgument("BenchRecord entry is not an object");
      }
      BenchEntry entry;
      entry.method = JsonStringOr(element.Find("method"), "");
      entry.dataset = JsonStringOr(element.Find("dataset"), "");
      entry.completed = JsonBoolOr(element.Find("completed"), false);
      entry.error = JsonStringOr(element.Find("error"), "");
      entry.seconds = JsonNumberOr(element.Find("seconds"), 0.0);
      entry.peak_heap_bytes =
          static_cast<int64_t>(JsonNumberOr(element.Find("peak_heap_bytes"), 0.0));
      entry.quality = JsonNumberOr(element.Find("quality"), 0.0);
      entry.subspace_quality = JsonNumberOr(element.Find("subspace_quality"), 0.0);
      entry.clusters_found = static_cast<uint64_t>(
          JsonNumberOr(element.Find("clusters_found"), 0.0));
      // Records written before the source axis existed are memory runs.
      entry.source = JsonStringOr(element.Find("source"), "memory");
      // Records written before the read-ahead axis existed ran the
      // synchronous scans.
      entry.read_ahead =
          static_cast<int64_t>(JsonNumberOr(element.Find("read_ahead"), 0.0));
      record.entries.push_back(std::move(entry));
    }
  }

  if (const JsonValue* metrics = root.Find("metrics");
      metrics != nullptr && metrics->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, value] : metrics->object) {
      if (value.kind == JsonValue::Kind::kNumber) {
        record.metrics[name] = static_cast<int64_t>(value.number_value);
      }
    }
  }
  return record;
}

Status BenchRecord::Save(const std::string& path) const {
  // Atomic publish: bench sweeps overwrite their record repeatedly, and
  // a crash mid-save must keep the previous complete record readable.
  return WriteFileAtomic(path, ToJson() + "\n");
}

Result<BenchRecord> BenchRecord::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return FromJson(buffer.str());
}

}  // namespace mrcc

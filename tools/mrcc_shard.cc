// mrcc-shard: one worker of a multi-process sharded build.
//
// Builds the Counting-tree over partition --shard of the dataset and
// publishes it as a checksummed artifact in the work directory
// (dist/shard_io.h). Idempotent: re-running a completed shard verifies
// the existing artifact and exits 0 without rebuilding, so a supervisor
// can simply re-exec every worker after a crash.
//
//   mrcc-shard --data=points.bin --work-dir=work --shards=8 --shard=3
//
// The first worker to run plans the manifest; later workers (and
// re-runs) validate against it — a changed dataset or parameterization
// is refused, not silently folded.

#include <cstdio>

#include "dist_flags.h"

int main(int argc, char** argv) {
  using namespace mrcc;
  const tools::DistFlags flags = tools::ParseDistFlags(argc, argv);
  if (!flags.ok) {
    std::fprintf(stderr, "mrcc-shard: %s\n", flags.error.c_str());
    std::fprintf(stderr,
                 "usage: mrcc-shard --data=FILE --work-dir=DIR --shard=I "
                 "[--shards=N] [--resolutions=H] [--alpha=A]\n");
    return 2;
  }
  if (flags.shard < 0) {
    std::fprintf(stderr, "mrcc-shard: --shard=I is required\n");
    return 2;
  }
  const dist::ShardedBuildOptions options = tools::ToOptions(flags);
  Result<dist::BuildManifest> manifest = dist::PrepareManifest(options);
  if (!manifest.ok()) {
    std::fprintf(stderr, "mrcc-shard: %s\n",
                 manifest.status().ToString().c_str());
    return 1;
  }
  const Status status =
      dist::BuildShard(options, *manifest, static_cast<size_t>(flags.shard));
  if (!status.ok()) {
    std::fprintf(stderr, "mrcc-shard: %s\n", status.ToString().c_str());
    return 1;
  }
  const dist::ShardPlan& plan =
      manifest->shards[static_cast<size_t>(flags.shard)];
  std::printf("shard %d done: points [%llu, %llu) -> %s\n", flags.shard,
              static_cast<unsigned long long>(plan.begin),
              static_cast<unsigned long long>(plan.end),
              dist::ShardArtifactPath(options.work_dir,
                                      static_cast<size_t>(flags.shard))
                  .c_str());
  return 0;
}

// The fault sweep: every registered failpoint, injected into a full
// pipeline run (mmap file source -> MrCC::Run -> result + report
// writes), must produce a clean non-OK Status of the expected category,
// a successful-but-degraded result, or a clean success via a fallback. Never an abort, never a
// crash, never a sanitizer report — this is the executable form of the
// failure model in DESIGN.md §11. The coverage assertion (every site
// records hits) proves the scenario actually reaches each seam, so a
// seam that silently loses its check fails the sweep.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/mrcc.h"
#include "data/data_source.h"
#include "data/dataset_io.h"
#include "data/result_io.h"
#include "dist/sharded_build.h"
#include "eval/report.h"
#include "test_util.h"

namespace mrcc {
namespace {

/// What the sweep expects a site to do to the pipeline when armed on
/// every hit.
enum class Outcome {
  kError,     // Run fails with the site's status code.
  kDegraded,  // Run succeeds with stats.degraded set.
  kAbsorbed,  // Run succeeds clean: a fallback absorbed the fault.
};

struct Expectation {
  Outcome outcome;
  StatusCode code = StatusCode::kOk;  // Only for kError.
};

const std::map<std::string, Expectation>& Expectations() {
  static const auto* map = new std::map<std::string, Expectation>{
      {"source.open", {Outcome::kError, StatusCode::kIOError}},
      {"source.scan", {Outcome::kError, StatusCode::kIOError}},
      // Armed on every hit the bounded retry loop exhausts its attempts.
      {"source.read.transient", {Outcome::kError, StatusCode::kIOError}},
      {"source.read.truncate", {Outcome::kError, StatusCode::kIOError}},
      // A corrupt row is caught by input sanitization, not by I/O.
      {"source.read.corrupt",
       {Outcome::kError, StatusCode::kInvalidArgument}},
      // A refused mapping falls back to the pread path transparently.
      {"source.mmap", {Outcome::kAbsorbed}},
      {"source.chunk.read", {Outcome::kError, StatusCode::kIOError}},
      {"tree.build.alloc",
       {Outcome::kError, StatusCode::kResourceExhausted}},
      {"tree.merge.alloc",
       {Outcome::kError, StatusCode::kResourceExhausted}},
      {"beta.search.alloc",
       {Outcome::kError, StatusCode::kResourceExhausted}},
      {"pool.spawn", {Outcome::kDegraded}},
      {"result.write", {Outcome::kError, StatusCode::kIOError}},
      {"report.write", {Outcome::kError, StatusCode::kIOError}},
      {"budget.memory", {Outcome::kDegraded}},
      {"budget.deadline", {Outcome::kDegraded}},
  };
  return *map;
}

/// The distributed seams (dist/) are reached by the sharded-build
/// scenario instead of the single-process one.
const std::map<std::string, Expectation>& DistExpectations() {
  static const auto* map = new std::map<std::string, Expectation>{
      // A failed artifact publication fails the worker's shard.
      {"shard.write", {Outcome::kError, StatusCode::kIOError}},
      // A failed manifest write fails planning.
      {"manifest.write", {Outcome::kError, StatusCode::kIOError}},
      // Checksum rot and lost loads are absorbed: the merger retries,
      // then rebuilds the shard in-process — slower, never wrong.
      {"shard.checksum", {Outcome::kAbsorbed}},
      {"merge.shard_load", {Outcome::kAbsorbed}},
  };
  return *map;
}

/// One full out-of-core pipeline pass: open, cluster, persist, report.
/// Exactly the surface a production driver runs, so an armed site fires
/// wherever its real failure would.
Status RunScenario(const Dataset& data, const std::string& bin_path,
                   const std::string& out_prefix, MrCCStats* stats) {
  // The mmap source exercises the most seams: open + header read (pread),
  // the mapping itself, and the per-chunk delivery path.
  Result<MmapFileDataSource> source = MmapFileDataSource::Open(bin_path);
  if (!source.ok()) return source.status();
  MrCCParams params;
  params.num_threads = 2;  // Two shards: exercises merge and pool seams.
  const Result<MrCCResult> result = MrCC(params).Run(*source);
  if (!result.ok()) return result.status();
  *stats = result->stats;
  MRCC_RETURN_IF_ERROR(
      WriteJsonFile(MrCCResultToJson(*result), out_prefix + "result.json"));
  MRCC_RETURN_IF_ERROR(WriteRunReport(data, *result, "fault sweep",
                                      out_prefix + "report.html"));
  return Status::OK();
}

/// The multi-process surface: plan, build every shard, merge — what the
/// mrcc-build driver runs. A fresh work directory every call so resume
/// state from the previous arm cannot mask a seam.
Status RunDistScenario(const std::string& bin_path,
                       const std::string& work_dir, MrCCStats* stats) {
  (void)std::system(
      ("rm -rf " + work_dir + " && mkdir -p " + work_dir).c_str());
  dist::ShardedBuildOptions options;
  options.dataset_path = bin_path;
  options.work_dir = work_dir;
  options.num_shards = 3;
  options.params.num_threads = 2;
  options.retry.max_attempts = 2;  // Keep exhausted-retry arms quick.
  options.retry.initial_backoff_us = 10;
  const Result<MrCCResult> result = dist::RunShardedBuild(options);
  if (!result.ok()) return result.status();
  *stats = result->stats;
  return Status::OK();
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::DisarmAll();  // A crashed prior test must not leak armed sites.
    data_ = testing::SmallClustered(6000, 4, 2, 77).data;
    bin_path_ = ::testing::TempDir() + "mrcc_fault_sweep.bin";
    out_prefix_ = ::testing::TempDir() + "mrcc_fault_sweep_";
    ASSERT_TRUE(SaveBinary(data_, bin_path_).ok());
  }
  void TearDown() override {
    fp::DisarmAll();
    std::remove(bin_path_.c_str());
    std::remove((out_prefix_ + "result.json").c_str());
    std::remove((out_prefix_ + "report.html").c_str());
  }

  Dataset data_;
  std::string bin_path_;
  std::string out_prefix_;
};

TEST_F(FaultInjectionTest, BaselineScenarioPassesDisarmed) {
  MrCCStats stats;
  const Status status = RunScenario(data_, bin_path_, out_prefix_, &stats);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.tree_build_threads, 2);
}

TEST_F(FaultInjectionTest, EveryRegisteredSiteFailsCleanlyOrDegrades) {
  const std::vector<std::string> sites = fp::AllSites();
  ASSERT_EQ(sites.size(), Expectations().size() + DistExpectations().size())
      << "a failpoint site is missing a sweep expectation; add it to "
         "Expectations() (or DistExpectations() for dist/ seams) and the "
         "failure model in DESIGN.md §11";
  const std::string work_dir = ::testing::TempDir() + "mrcc_fault_dist";
  for (const std::string& site : sites) {
    SCOPED_TRACE("failpoint: " + site);
    const bool dist_site =
        DistExpectations().find(site) != DistExpectations().end();
    const auto& expectations =
        dist_site ? DistExpectations() : Expectations();
    const auto it = expectations.find(site);
    ASSERT_NE(it, expectations.end());
    const auto run = [&](MrCCStats* stats) {
      return dist_site ? RunDistScenario(bin_path_, work_dir, stats)
                       : RunScenario(data_, bin_path_, out_prefix_, stats);
    };

    fp::ScopedArm arm(site);  // Every-hit trigger.
    MrCCStats stats;
    const Status status = run(&stats);
    // Coverage: the scenario must actually reach the seam.
    EXPECT_GT(fp::HitCount(site.c_str()), 0u) << "seam never exercised";
    if (it->second.outcome == Outcome::kError) {
      ASSERT_FALSE(status.ok());
      EXPECT_EQ(status.code(), it->second.code) << status.ToString();
      EXPECT_FALSE(status.message().empty());
    } else if (it->second.outcome == Outcome::kDegraded) {
      ASSERT_TRUE(status.ok()) << status.ToString();
      EXPECT_TRUE(stats.degraded);
      EXPECT_FALSE(stats.degradation_reasons.empty());
    } else {
      // Absorbed: the fault is invisible to the pipeline's result.
      ASSERT_TRUE(status.ok()) << status.ToString();
      EXPECT_FALSE(stats.degraded);
    }
    fp::DisarmAll();

    // The pipeline must come back clean once the fault clears — no sticky
    // state, no half-written structures poisoning the next run.
    MrCCStats recovered;
    const Status after = run(&recovered);
    EXPECT_TRUE(after.ok()) << site << " left damage: " << after.ToString();
    EXPECT_FALSE(recovered.degraded) << site;
  }
  (void)std::system(("rm -rf " + work_dir).c_str());
}

TEST_F(FaultInjectionTest, SingleTransientErrorIsRetriedInvisibly) {
  // One injected EAGAIN: the read layer retries with backoff and the run
  // completes identically to the undisturbed one.
  MrCCStats baseline_stats;
  ASSERT_TRUE(
      RunScenario(data_, bin_path_, out_prefix_, &baseline_stats).ok());

  fp::ScopedArm arm("source.read.transient=1");
  Result<BinaryFileDataSource> source =
      BinaryFileDataSource::Open(bin_path_);
  ASSERT_TRUE(source.ok());
  const Result<MrCCResult> result = MrCC().Run(*source);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->stats.degraded);
  EXPECT_GT(fp::HitCount("source.read.transient"), 0u);
}

TEST_F(FaultInjectionTest, ProbabilisticReadFaultsNeverCrashThePipeline) {
  // A flaky-disk soak: 20% of reads fail transiently under a fixed seed.
  // Runs either complete (enough retries absorbed the faults) or fail
  // with a clean IOError; determinism of the trigger makes this exact.
  fp::ScopedArm arm("source.read.transient=p0.2@1234");
  Result<BinaryFileDataSource> source =
      BinaryFileDataSource::Open(bin_path_);
  if (!source.ok()) {
    EXPECT_EQ(source.status().code(), StatusCode::kIOError);
    return;
  }
  const Result<MrCCResult> result = MrCC().Run(*source);
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kIOError);
    EXPECT_NE(result.status().message().find("retries"), std::string::npos)
        << result.status().ToString();
  }
}

TEST_F(FaultInjectionTest, LenientPolicySurvivesCorruptRows) {
  // Corrupt rows + skip policy: the run completes on the clean subset
  // and reports exactly how much it dropped.
  fp::ScopedArm arm("source.read.corrupt=p0.05@7");
  Result<BinaryFileDataSource> source =
      BinaryFileDataSource::Open(bin_path_);
  ASSERT_TRUE(source.ok());
  MrCCParams params;
  params.bad_point_policy = BadPointPolicy::kSkip;
  const Result<MrCCResult> result = MrCC(params).Run(*source);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.points_skipped, 0u);
  EXPECT_LT(result->stats.points_skipped, data_.NumPoints());
}

}  // namespace
}  // namespace mrcc

#include "common/union_find.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.h"

namespace mrcc {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(UnionFindTest, UnionMergesAndReports) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));  // Already merged.
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_FALSE(uf.Connected(0, 4));
  EXPECT_EQ(uf.NumSets(), 3u);
}

TEST(UnionFindTest, DenseIdsAreContiguousAndOrderedByFirstAppearance) {
  UnionFind uf(5);
  uf.Union(3, 4);
  uf.Union(1, 3);
  std::vector<size_t> ids = uf.DenseIds();
  // Element 0 appears first -> id 0; element 1's set next -> id 1;
  // element 2 -> id 2; 3 and 4 share set with 1.
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 1u);
  EXPECT_EQ(ids[2], 2u);
  EXPECT_EQ(ids[3], 1u);
  EXPECT_EQ(ids[4], 1u);
}

TEST(UnionFindTest, MatchesNaiveImplementationOnRandomOperations) {
  const size_t n = 200;
  UnionFind uf(n);
  std::vector<size_t> naive(n);  // naive[i] = set label.
  for (size_t i = 0; i < n; ++i) naive[i] = i;

  Rng rng(99);
  for (int op = 0; op < 500; ++op) {
    const size_t a = rng.UniformInt(n);
    const size_t b = rng.UniformInt(n);
    uf.Union(a, b);
    const size_t la = naive[a], lb = naive[b];
    if (la != lb) {
      for (size_t i = 0; i < n; ++i) {
        if (naive[i] == lb) naive[i] = la;
      }
    }
  }
  std::set<size_t> labels(naive.begin(), naive.end());
  EXPECT_EQ(uf.NumSets(), labels.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(uf.Connected(i, j), naive[i] == naive[j])
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(UnionFindTest, SizeAccessor) {
  UnionFind uf(17);
  EXPECT_EQ(uf.Size(), 17u);
}

}  // namespace
}  // namespace mrcc

// Low-level file primitives for the out-of-core readers.
//
// The binary dataset path used std::ifstream, which hides *why* a read
// came up short: a signal-interrupted read, a transient error and a
// truncated file all collapse into failbit. Production streaming needs
// the distinction — EINTR must be retried invisibly, transient errors
// retried with bounded backoff, and truncation reported with the exact
// byte offset so an operator can locate the damage. These helpers wrap
// positional POSIX reads (pread) with exactly that contract; pread also
// removes the shared-file-position hazard, so cursors over one file
// descriptor could even share it safely.
//
// Fault injection: ReadExactAt honors the `source.read.transient` (fails
// an attempt like an interrupted/temporarily-failing syscall; exercises
// the retry loop) and `source.read.truncate` (simulates end-of-file;
// exercises the truncation path) failpoints.

#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace mrcc {

/// Owning POSIX file descriptor (move-only; closes on destruction).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd();

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// Opens `path` read-only. NotFound for a missing file, IOError otherwise.
[[nodiscard]] Result<UniqueFd> OpenForRead(const std::string& path);

/// Read-only memory mapping of a file prefix (move-only; unmaps on
/// destruction). The mapping is advised MADV_SEQUENTIAL: the streaming
/// build touches every page exactly once in order, so aggressive
/// readahead wins and touched pages can be dropped early.
///
/// Fault injection: Map honors the `source.mmap` failpoint (simulates a
/// kernel refusal — address-space cap, filesystem without mmap support);
/// callers are expected to fall back to the positional-read path.
class MmapRegion {
 public:
  MmapRegion() = default;
  ~MmapRegion();

  MmapRegion(MmapRegion&& other) noexcept;
  MmapRegion& operator=(MmapRegion&& other) noexcept;
  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;

  /// Maps the first `length` bytes of `fd` (must be > 0). The fd may be
  /// closed after mapping; the mapping stays valid until destruction.
  [[nodiscard]] static Result<MmapRegion> Map(int fd, size_t length,
                                              const std::string& path);

  bool valid() const { return addr_ != nullptr; }
  const unsigned char* data() const {
    return static_cast<const unsigned char*>(addr_);
  }
  size_t size() const { return length_; }

  /// Advises the kernel that [offset, offset + length) will be read soon
  /// (MADV_WILLNEED), so page-in starts before the first touch. Advisory
  /// and clamped to the mapping: out-of-range requests shrink to fit and
  /// a kernel that ignores the hint costs nothing. No-op when !valid().
  void WillNeed(size_t offset, size_t length) const;

 private:
  MmapRegion(void* addr, size_t length) : addr_(addr), length_(length) {}

  void* addr_ = nullptr;
  size_t length_ = 0;
};

/// Size of the open file in bytes.
[[nodiscard]] Result<uint64_t> FileSize(int fd, const std::string& path);

/// Number of transient-retry attempts ReadExactAt makes before giving up
/// (EINTR loops are unbounded and not counted — an interrupted syscall is
/// not a failure).
inline constexpr int kMaxReadRetries = 3;

/// Reads exactly `n` bytes at `offset` into `buf`.
///   - Partial reads continue where they left off (a pipe-backed or
///     networked filesystem may return fewer bytes than asked).
///   - EINTR retries immediately, without limit.
///   - Other transient errno values (EAGAIN) retry up to kMaxReadRetries
///     times with exponential backoff, then surface as IOError.
///   - End-of-file before `n` bytes is IOError naming `path` and the
///     exact byte offset where data ran out.
/// `path` is used for error messages only.
[[nodiscard]] Status ReadExactAt(int fd, void* buf, size_t n, uint64_t offset,
                   const std::string& path);

/// Seed ("offset basis") of the 64-bit FNV-1a hash below.
inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;

/// 64-bit FNV-1a over `n` bytes, continuing from `seed`. This is the
/// checksum of the shard-artifact trailer (src/dist/shard_io.h) and the
/// fingerprint hash of the build manifest: fast, dependency-free, and
/// stable across platforms. Chain calls by passing the previous return
/// value as `seed`.
uint64_t Fnv1a(const void* data, size_t n, uint64_t seed = kFnvOffsetBasis);

/// Atomically replaces `path` with `contents`: writes to a temporary
/// file in the same directory, fsyncs it, renames it over `path`, then
/// fsyncs the directory so the rename itself is durable. A crash (even
/// SIGKILL) at any instant leaves either the old file or the complete
/// new one — never a torn mix; at worst a stale `<path>.tmp.<pid>` file
/// survives, which a rerun simply overwrites. This is the only sanctioned
/// way to publish an artifact another process may read (tree files, shard
/// artifacts, manifests, result JSON, reports).
[[nodiscard]] Status WriteFileAtomic(const std::string& path,
                                     const std::string& contents);

/// Reads all of `path` into a string (NotFound surfaces as IOError, like
/// every loader in this repo; see OpenForRead).
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);

/// Creates `path` and any missing parents (mkdir -p semantics). An
/// existing directory is success; an existing non-directory at any
/// component is IOError.
[[nodiscard]] Status MakeDirs(const std::string& path);

/// Asks the kernel to drop `path`'s cached pages (posix_fadvise
/// POSIX_FADV_DONTNEED). Best effort: tmpfs and some filesystems ignore
/// the hint, and an unsupported advice is not an error. The cold-cache
/// benches use this so a repeated scan measures device reads, not page
/// cache hits.
[[nodiscard]] Status DropFileCache(const std::string& path);

}  // namespace mrcc

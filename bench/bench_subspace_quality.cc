// Reproduces Fig. 5s: Subspaces Quality (precision/recall over the
// relevant-axis sets) of the first synthetic group. LAC is excluded — it
// only weights axes instead of selecting them (paper §IV-F).
//
// Expected shape: MrCC and EPCH close together at the top; P3C, CFPC and
// HARP worse.

#include <algorithm>

#include "bench/bench_common.h"
#include "data/catalog.h"

int main(int argc, char** argv) {
  using namespace mrcc::bench;
  BenchOptions options = ParseOptions(argc, argv);
  options.methods.erase(
      std::remove(options.methods.begin(), options.methods.end(), "LAC"),
      options.methods.end());
  BenchRecorder recorder("subspace_quality", options);
  PrintHeader("subspaces quality, first group", "Fig. 5s", options);
  RunMatrix("subspace_quality", mrcc::Group1Configs(options.scale), options,
            &recorder);
  return recorder.Finish();
}

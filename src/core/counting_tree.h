// The Counting-tree (paper §III-A): a sparse, quadtree-like multi-
// resolution hyper-grid over [0,1)^d.
//
// Level h (1 <= h <= H-1) covers the unit cube with cells of side 1/2^h.
// Only non-empty cells are materialized, so each level holds at most eta
// cells regardless of the 2^(d h) nominal grid size. Each cell stores
//   - loc:   its position inside the parent cell, one bit per axis
//            (0 = lower half, 1 = upper half),
//   - n:     the number of points in its space,
//   - P[j]:  the half-space count — points in the lower half of the cell
//            along axis e_j,
//   - used:  the usedCell flag consumed by the β-cluster search,
//   - child: the node refining this cell at level h+1 (if any).
//
// A node is the set of sibling cells sharing one parent cell (the paper's
// linked list of cells). Storage is cache- and footprint-conscious: cells
// live in a per-node vector, the d half-space counts of all sibling cells
// share one contiguous array, and a loc -> index hash map is only built
// for nodes with many cells (small nodes use a linear scan). The tree is
// built in a single scan of the data: O(eta * H * d) time and
// O(H * eta * d) space, matching Algorithm 1.

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace mrcc {

/// Sparse multi-resolution grid of point counts (see file comment).
class CountingTree {
 public:
  /// Deepest representable level. Beyond ~52 subdivisions cell boundaries
  /// fall below the double mantissa, so deeper levels carry no information;
  /// 62 keeps integer cell coordinates inside a uint64_t.
  static constexpr int kMaxResolutions = 62;

  /// Maximum dataset dimensionality (loc packs one bit per axis).
  static constexpr size_t kMaxDims = 62;

  /// Node size at which a loc -> index hash map replaces linear search.
  static constexpr size_t kIndexThreshold = 16;

  struct Cell {
    /// Position inside the parent cell: bit j = upper (1) / lower (0) half
    /// of the parent along axis e_j.
    uint64_t loc = 0;

    /// Number of points inside this cell's space.
    uint32_t n = 0;

    /// Index of the node refining this cell at the next level, or -1.
    int32_t child_node = -1;

    /// usedCell flag from Algorithm 2 (set by the β-cluster search).
    bool used = false;
  };

  struct Node {
    /// Resolution level of the cells in this node (1-based).
    int level = 1;

    /// Absolute integer coordinates of this node's parent cell at level
    /// `level - 1` (all zeros for the root node). A cell in this node has
    /// coordinates base_coords[j] * 2 + bit_j(loc) at `level`.
    std::vector<uint64_t> base_coords;

    std::vector<Cell> cells;

    /// Half-space counts of every cell, d entries per cell:
    /// half[c * d + j] = points of cells[c] in its lower half along e_j.
    std::vector<uint32_t> half;

    /// loc -> index into `cells`; built once the node outgrows linear scan.
    std::unique_ptr<std::unordered_map<uint64_t, uint32_t>> index;
  };

  /// A located cell: node index + cell index within the node.
  struct CellRef {
    uint32_t node = 0;
    uint32_t cell = 0;
  };

  /// Builds the tree over `data` with `num_resolutions` = H resolutions
  /// (levels 1..H-1 are materialized; the paper requires H >= 3).
  /// `data` must lie in [0,1)^d with d <= kMaxDims.
  static Result<CountingTree> Build(const Dataset& data, int num_resolutions);

  /// Incremental construction for streamed data (one point at a time, any
  /// source). Points must lie in [0,1)^d.
  class Builder {
   public:
    /// Validates (d, H) like Build(); check status() before adding.
    Builder(size_t num_dims, int num_resolutions);

    const Status& status() const { return status_; }

    /// Counts one point into the tree. Rejects out-of-cube values.
    Status Add(std::span<const double> point);

    /// Finalizes and returns the tree. The builder is consumed.
    Result<CountingTree> Finish() &&;

   private:
    Status status_;
    std::unique_ptr<CountingTree> tree_;
  };

  /// Number of resolutions H (the root counts as resolution 0).
  int num_resolutions() const { return num_resolutions_; }

  /// Dataset dimensionality d.
  size_t num_dims() const { return num_dims_; }

  /// Total points counted (eta).
  uint64_t total_points() const { return total_points_; }

  /// Node indices whose cells live at level h (1 <= h <= H-1).
  const std::vector<uint32_t>& NodesAtLevel(int h) const;

  Node& node(uint32_t idx) { return nodes_[idx]; }
  const Node& node(uint32_t idx) const { return nodes_[idx]; }
  size_t num_nodes() const { return nodes_.size(); }

  const Cell& cell(CellRef ref) const {
    return nodes_[ref.node].cells[ref.cell];
  }
  Cell& cell(CellRef ref) { return nodes_[ref.node].cells[ref.cell]; }

  /// Half-space count P[axis] of the referenced cell.
  uint32_t HalfCount(CellRef ref, size_t axis) const {
    return nodes_[ref.node].half[ref.cell * num_dims_ + axis];
  }

  /// Number of materialized (non-empty) cells at level h.
  size_t NumCellsAtLevel(int h) const;

  /// Absolute integer coordinates (in [0, 2^level)) of `cell` of `node`.
  std::vector<uint64_t> CellCoords(const Node& node, const Cell& cell) const;

  /// Locates the cell at `coords` on `level`. Returns true and fills `ref`
  /// when that region holds points. Walks down from the root: O(level)
  /// lookups.
  bool FindCell(int level, const std::vector<uint64_t>& coords,
                CellRef* ref) const;

  /// The face neighbor of the cell at `coords` (level `level`) along
  /// `axis`, in direction `dir` (-1 = lower, +1 = upper). Returns false
  /// when outside the cube or not materialized. Covers both the paper's
  /// internal neighbor (same parent) and external neighbor (adjacent
  /// parent) transparently.
  bool FaceNeighbor(int level, const std::vector<uint64_t>& coords,
                    size_t axis, int dir, CellRef* ref) const;

  /// Point count of the face neighbor, 0 when absent.
  uint32_t FaceNeighborCount(int level, const std::vector<uint64_t>& coords,
                             size_t axis, int dir) const;

  /// Clears every usedCell flag (lets one tree serve several runs).
  void ResetUsedFlags();

  /// Removes the deepest materialized level (H := H - 1) and frees its
  /// nodes — the graceful-degradation lever under memory pressure: the
  /// paper's H trades resolution for resources, and counts at the
  /// remaining levels are untouched, so the result equals a tree built
  /// with the smaller H from the start (node for node — creation order
  /// is preserved by the compaction). Fails when H is already the
  /// minimum 3.
  Status DropDeepestLevel();

  /// Full structural walk of every invariant the core relies on: d-bit
  /// loc codes, half-space counts P[j] <= n, child levels/base
  /// coordinates, child count sums equal to the parent cell count,
  /// single-parent linkage, by-level index consistency and the
  /// total-point count. O(nodes * cells * d) — debug/validation tool,
  /// not a hot-path call. Returns OK or Internal naming the first
  /// violated invariant. Builder::Finish and MergeTree run it in debug
  /// builds; LoadTree runs it unconditionally to reject corrupt files.
  Status ValidateInvariants() const;

  /// Approximate heap footprint of the tree in bytes.
  size_t MemoryBytes() const;

 private:
  CountingTree(size_t num_dims, int num_resolutions)
      : num_dims_(num_dims), num_resolutions_(num_resolutions) {}

  // Persistence and merging need raw access to the node pool (tree_io.h).
  friend Result<CountingTree> LoadTree(const std::string& path);
  friend Status MergeTree(CountingTree* tree, const CountingTree& other,
                          struct MergeTreeStats* stats);

  /// Inserts one point given its per-level grid coordinates; see Build.
  void InsertPoint(std::span<const double> point);

  /// Index of the cell with position `loc` in `node`, or -1.
  int64_t FindInNode(const Node& node, uint64_t loc) const;

  /// Finds or creates the cell with position `loc`; returns its index.
  uint32_t FindOrCreateInNode(uint32_t node_idx, uint64_t loc);

  /// Creates an empty node at `level` under the given parent cell.
  uint32_t NewNode(int level, std::vector<uint64_t> base_coords);

  size_t num_dims_;
  int num_resolutions_;
  uint64_t total_points_ = 0;
  std::vector<Node> nodes_;                      // nodes_[0] is the root.
  std::vector<std::vector<uint32_t>> by_level_;  // level -> node indices.
};

}  // namespace mrcc


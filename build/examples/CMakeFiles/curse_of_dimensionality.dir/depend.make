# Empty dependencies file for curse_of_dimensionality.
# This may be replaced when dependencies are built.

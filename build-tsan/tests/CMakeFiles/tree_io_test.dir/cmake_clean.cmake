file(REMOVE_RECURSE
  "CMakeFiles/tree_io_test.dir/tree_io_test.cc.o"
  "CMakeFiles/tree_io_test.dir/tree_io_test.cc.o.d"
  "tree_io_test"
  "tree_io_test.pdb"
  "tree_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "core/counting_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "test_util.h"

namespace mrcc {
namespace {

using CellRef = CountingTree::CellRef;

// Convenience: count of the cell at coords, or -1 if absent.
int64_t CountAt(const CountingTree& tree, int level,
                const std::vector<uint64_t>& coords) {
  CellRef ref;
  if (!tree.FindCell(level, coords, &ref)) return -1;
  return tree.Count(ref);
}

// Convenience: half-space count, requires the cell to exist.
uint32_t HalfAt(const CountingTree& tree, int level,
                const std::vector<uint64_t>& coords, size_t axis) {
  CellRef ref;
  EXPECT_TRUE(tree.FindCell(level, coords, &ref));
  return tree.HalfCount(ref, axis);
}

// Brute-force count of points inside the cell at `coords` on `level`.
uint32_t BruteCount(const Dataset& data, int level,
                    const std::vector<uint64_t>& coords) {
  const double width = std::ldexp(1.0, -level);
  uint32_t count = 0;
  for (size_t i = 0; i < data.NumPoints(); ++i) {
    bool inside = true;
    for (size_t j = 0; j < data.NumDims(); ++j) {
      const double lo = static_cast<double>(coords[j]) * width;
      if (data(i, j) < lo || data(i, j) >= lo + width) {
        inside = false;
        break;
      }
    }
    if (inside) ++count;
  }
  return count;
}

// Brute-force half-space count (lower half along `axis`).
uint32_t BruteHalfCount(const Dataset& data, int level,
                        const std::vector<uint64_t>& coords, size_t axis) {
  const double width = std::ldexp(1.0, -level);
  uint32_t count = 0;
  for (size_t i = 0; i < data.NumPoints(); ++i) {
    bool inside = true;
    for (size_t j = 0; j < data.NumDims(); ++j) {
      const double lo = static_cast<double>(coords[j]) * width;
      if (data(i, j) < lo || data(i, j) >= lo + width) {
        inside = false;
        break;
      }
    }
    if (inside) {
      const double mid = (static_cast<double>(coords[axis]) + 0.5) * width;
      if (data(i, axis) < mid) ++count;
    }
  }
  return count;
}

TEST(CountingTreeTest, RejectsBadArguments) {
  Dataset d = testing::UniformDataset(10, 3, 1);
  EXPECT_FALSE(CountingTree::Build(d, 2).ok());  // H < 3.
  Dataset out_of_cube = testing::MakeDataset({{1.5, 0.2}});
  EXPECT_FALSE(CountingTree::Build(out_of_cube, 4).ok());
  Dataset too_wide(2, 63);
  EXPECT_FALSE(CountingTree::Build(too_wide, 4).ok());
}

TEST(CountingTreeTest, ClampsExcessiveResolutions) {
  Dataset d = testing::UniformDataset(20, 2, 3);
  Result<CountingTree> tree = CountingTree::Build(d, 80);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->num_resolutions(), CountingTree::kMaxResolutions + 1);
}

TEST(CountingTreeTest, HandCraftedTwoDimensionalExample) {
  // Four points in known quadrants (Fig. 3 style).
  Dataset d = testing::MakeDataset({
      {0.1, 0.1},   // Lower-left quadrant.
      {0.2, 0.2},   // Lower-left quadrant.
      {0.9, 0.1},   // Lower-right quadrant.
      {0.6, 0.7},   // Upper-right quadrant.
  });
  Result<CountingTree> tree = CountingTree::Build(d, 4);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->total_points(), 4u);

  // Level 1 (2x2 grid): cells (0,0):2, (1,0):1, (1,1):1.
  EXPECT_EQ(CountAt(*tree, 1, {0, 0}), 2);
  EXPECT_EQ(CountAt(*tree, 1, {1, 0}), 1);
  EXPECT_EQ(CountAt(*tree, 1, {1, 1}), 1);
  EXPECT_EQ(CountAt(*tree, 1, {0, 1}), -1);  // Empty quadrant.

  // Half-space counts of the lower-left cell: both (0.1,0.1) and
  // (0.2,0.2) lie in the lower half along both axes (0 <= v < 0.25).
  EXPECT_EQ(HalfAt(*tree, 1, {0, 0}, 0), 2u);
  EXPECT_EQ(HalfAt(*tree, 1, {0, 0}, 1), 2u);
  // The lower-right cell's point (0.9, 0.1) is in the upper half along
  // axis 0 (0.75 <= v < 1) and the lower half along axis 1.
  EXPECT_EQ(HalfAt(*tree, 1, {1, 0}, 0), 0u);
  EXPECT_EQ(HalfAt(*tree, 1, {1, 0}, 1), 1u);

  // Level 2 (4x4): point (0.6, 0.7) sits in cell (2, 2).
  EXPECT_EQ(CountAt(*tree, 2, {2, 2}), 1);
}

TEST(CountingTreeTest, FaceNeighborsInHandCraftedExample) {
  Dataset d = testing::MakeDataset({
      {0.1, 0.1},
      {0.9, 0.1},
  });
  Result<CountingTree> tree = CountingTree::Build(d, 3);
  ASSERT_TRUE(tree.ok());
  CellRef ref;
  // At level 1, (0,0) and (1,0) are face neighbors along axis 0.
  ASSERT_TRUE(tree->FaceNeighbor(1, {0, 0}, 0, +1, &ref));
  EXPECT_EQ(tree->Count(ref), 1u);
  // Border: no neighbor below coordinate 0 / above the maximum.
  EXPECT_FALSE(tree->FaceNeighbor(1, {0, 0}, 0, -1, &ref));
  EXPECT_FALSE(tree->FaceNeighbor(1, {1, 0}, 0, +1, &ref));
  // Empty space: (0,1) holds no points.
  EXPECT_FALSE(tree->FaceNeighbor(1, {0, 0}, 1, +1, &ref));
  EXPECT_EQ(tree->FaceNeighborCount(1, {0, 0}, 1, +1), 0u);
}

TEST(CountingTreeTest, ResetUsedFlags) {
  Dataset d = testing::UniformDataset(50, 2, 5);
  Result<CountingTree> tree = CountingTree::Build(d, 4);
  ASSERT_TRUE(tree.ok());
  tree->SetUsed(CellRef{1, 0}, true);
  EXPECT_TRUE(tree->Used(CellRef{1, 0}));
  tree->ResetUsedFlags();
  for (int h = 1; h < tree->num_resolutions(); ++h) {
    for (uint8_t u : tree->Level(h).used()) EXPECT_EQ(u, 0);
  }
}

TEST(CountingTreeTest, MemoryGrowsWithData) {
  Dataset small = testing::UniformDataset(100, 4, 1);
  Dataset large = testing::UniformDataset(10000, 4, 1);
  Result<CountingTree> ts = CountingTree::Build(small, 4);
  Result<CountingTree> tl = CountingTree::Build(large, 4);
  ASSERT_TRUE(ts.ok() && tl.ok());
  EXPECT_GT(tl->MemoryBytes(), ts->MemoryBytes());
}

// Property sweep over dimensionality, depth and size: structural
// invariants of the tree hold for arbitrary uniform data.
class CountingTreeParam
    : public ::testing::TestWithParam<std::tuple<size_t, int, size_t>> {};

TEST_P(CountingTreeParam, StructuralInvariants) {
  const auto [dims, resolutions, points] = GetParam();
  Dataset d = testing::UniformDataset(points, dims, 40 + dims);
  Result<CountingTree> tree = CountingTree::Build(d, resolutions);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->total_points(), points);

  for (int h = 1; h < tree->num_resolutions(); ++h) {
    const CountingTree::LevelView level = tree->Level(h);
    EXPECT_EQ(level.level(), h);
    EXPECT_EQ(level.num_dims(), dims);
    const size_t cells = level.num_cells();
    EXPECT_EQ(level.counts().size(), cells);
    EXPECT_EQ(level.locs().size(), cells);
    EXPECT_EQ(level.children().size(), cells);
    EXPECT_EQ(level.used().size(), cells);
    EXPECT_EQ(level.half().size(), cells * dims);

    uint64_t level_total = 0;
    for (uint32_t i = 0; i < cells; ++i) {
      const uint32_t n = level.counts()[i];
      level_total += n;
      EXPECT_GT(n, 0u);  // Sparse: only populated cells stored.
      // Half-space counts never exceed the cell count.
      for (size_t j = 0; j < dims; ++j) {
        EXPECT_LE(level.half_of(i)[j], n);
      }
      // Coordinates round-trip through FindCell to the same arena slot.
      const auto coords = level.Coords(i);
      for (size_t j = 0; j < dims; ++j) {
        EXPECT_LT(coords[j], uint64_t{1} << h);
      }
      CellRef found;
      ASSERT_TRUE(tree->FindCell(h, coords, &found));
      EXPECT_EQ(found.level, h);
      EXPECT_EQ(found.index, i);
    }
    // Every level counts every point exactly once.
    EXPECT_EQ(level_total, points);
    EXPECT_EQ(tree->NumCellsAtLevel(h), cells);
    EXPECT_LE(cells, points);  // At most eta cells per level.

    // Children sum to the parent count: group this level's cells by
    // their parent coordinates and compare against level h - 1.
    if (h >= 2) {
      const CountingTree::LevelView parents = tree->Level(h - 1);
      std::vector<uint64_t> child_sum(parents.num_cells(), 0);
      std::vector<uint64_t> parent_coords(dims);
      for (uint32_t i = 0; i < cells; ++i) {
        level.CoordsInto(i, parent_coords.data());
        for (size_t j = 0; j < dims; ++j) parent_coords[j] >>= 1;
        CellRef parent;
        ASSERT_TRUE(tree->FindCell(h - 1, parent_coords, &parent));
        child_sum[parent.index] += level.counts()[i];
      }
      for (uint32_t p = 0; p < parents.num_cells(); ++p) {
        if (parents.children()[p] >= 0) {
          EXPECT_EQ(child_sum[p], parents.counts()[p]) << "parent " << p;
        } else {
          EXPECT_EQ(child_sum[p], 0u) << "parent " << p;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CountingTreeParam,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 5, 14),
                       ::testing::Values(3, 4, 6),
                       ::testing::Values<size_t>(64, 1000)));

// Counts match brute force for every stored cell on a small dataset.
TEST(CountingTreeTest, CountsMatchBruteForce) {
  Dataset d = testing::UniformDataset(300, 3, 77);
  Result<CountingTree> tree = CountingTree::Build(d, 4);
  ASSERT_TRUE(tree.ok());
  for (int h = 1; h < 4; ++h) {
    const CountingTree::LevelView level = tree->Level(h);
    for (uint32_t i = 0; i < level.num_cells(); ++i) {
      const auto coords = level.Coords(i);
      EXPECT_EQ(level.counts()[i], BruteCount(d, h, coords));
      for (size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(level.half_of(i)[j], BruteHalfCount(d, h, coords, j));
      }
    }
  }
}

TEST(CountingTreeTest, FaceNeighborsMatchBruteForce) {
  Dataset d = testing::UniformDataset(200, 2, 13);
  Result<CountingTree> tree = CountingTree::Build(d, 4);
  ASSERT_TRUE(tree.ok());
  for (int h = 1; h < 4; ++h) {
    const CountingTree::LevelView level = tree->Level(h);
    for (uint32_t i = 0; i < level.num_cells(); ++i) {
      const auto coords = level.Coords(i);
      for (size_t j = 0; j < 2; ++j) {
        for (int dir : {-1, +1}) {
          std::vector<uint64_t> neighbor = coords;
          const uint64_t max_coord = (uint64_t{1} << h) - 1;
          uint32_t expected = 0;
          if (!(dir < 0 && coords[j] == 0) &&
              !(dir > 0 && coords[j] == max_coord)) {
            neighbor[j] += dir;
            expected = BruteCount(d, h, neighbor);
          }
          EXPECT_EQ(tree->FaceNeighborCount(h, coords, j, dir), expected);
        }
      }
    }
  }
}

TEST(CountingTreeTest, BoundaryValuesNearOne) {
  // Values just below 1.0 land in the last cell at every level.
  Dataset d = testing::MakeDataset({{1.0 - 1e-12}});
  Result<CountingTree> tree = CountingTree::Build(d, 5);
  ASSERT_TRUE(tree.ok());
  for (int h = 1; h < 5; ++h) {
    const uint64_t last = (uint64_t{1} << h) - 1;
    EXPECT_EQ(CountAt(*tree, h, {last}), 1) << "level " << h;
  }
}

TEST(CountingTreeTest, ZeroIsInFirstCell) {
  Dataset d = testing::MakeDataset({{0.0, 0.0}});
  Result<CountingTree> tree = CountingTree::Build(d, 4);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(CountAt(*tree, 3, {0, 0}), 1);
}

// The loc index kicks in above kIndexThreshold cells per node; lookups
// must behave identically on either side of the switch.
TEST(CountingTreeTest, DenseNodeIndexSwitchIsTransparent) {
  // 1-d data spread over all 32 level-5 leaves forces the root's
  // descendants through the threshold.
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 64; ++i) {
    points.push_back({(i + 0.5) / 64.0});
  }
  Dataset d = testing::MakeDataset(points);
  Result<CountingTree> tree = CountingTree::Build(d, 7);
  ASSERT_TRUE(tree.ok());
  for (int h = 1; h < 7; ++h) {
    const uint64_t cells = uint64_t{1} << std::min(h, 6);
    for (uint64_t c = 0; c < cells; ++c) {
      const int64_t expected =
          static_cast<int64_t>(64 >> std::min(h, 6));
      EXPECT_EQ(CountAt(*tree, h, {c}), expected) << "h=" << h << " c=" << c;
    }
  }
}

TEST(CountingTreeInvariantsTest, FreshTreeValidates) {
  Dataset d = testing::UniformDataset(2000, 5, 11);
  Result<CountingTree> tree = CountingTree::Build(d, 5);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->ValidateInvariants().ok());
}

TEST(CountingTreeInvariantsTest, DetectsHalfCountAboveCellCount) {
  Dataset d = testing::UniformDataset(1000, 4, 12);
  Result<CountingTree> tree = CountingTree::Build(d, 4);
  ASSERT_TRUE(tree.ok());
  // P[j] counts a subset of the cell's points, so P[j] > n is impossible
  // in a correct tree.
  const CellRef first{1, 0};
  CountingTree::TestPeer::Half(*tree, first, 0) = tree->Count(first) + 1;
  const Status v = tree->ValidateInvariants();
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.message().find("half-space"), std::string::npos)
      << v.ToString();
}

TEST(CountingTreeInvariantsTest, DetectsLocBitsAboveDimension) {
  Dataset d = testing::UniformDataset(1000, 4, 13);
  Result<CountingTree> tree = CountingTree::Build(d, 4);
  ASSERT_TRUE(tree.ok());
  // d = 4: bit 60 invalid.
  CountingTree::TestPeer::Loc(*tree, CellRef{1, 0}) |= uint64_t{1} << 60;
  const Status v = tree->ValidateInvariants();
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.message().find("loc"), std::string::npos) << v.ToString();
}

TEST(CountingTreeInvariantsTest, DetectsChildSumMismatch) {
  Dataset d = testing::UniformDataset(1000, 4, 14);
  Result<CountingTree> tree = CountingTree::Build(d, 4);
  ASSERT_TRUE(tree.ok());
  // Inflating one level-1 cell breaks "child counts sum to the parent"
  // (and the root total): every point in a cell is also counted in its
  // child node.
  CountingTree::TestPeer::Count(*tree, CellRef{1, 0}) += 5;
  EXPECT_FALSE(tree->ValidateInvariants().ok());
}

TEST(CountingTreeInvariantsTest, DetectsDanglingChildPointer) {
  Dataset d = testing::UniformDataset(1000, 4, 15);
  Result<CountingTree> tree = CountingTree::Build(d, 4);
  ASSERT_TRUE(tree.ok());
  CountingTree::TestPeer::Child(*tree, CellRef{1, 0}) =
      static_cast<int32_t>(tree->num_nodes() + 100);
  const Status v = tree->ValidateInvariants();
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.message().find("child"), std::string::npos) << v.ToString();
}

// ---- LevelView: the sanctioned bulk read API over the SoA arenas.

TEST(LevelViewTest, SpansAgreeWithSingleCellAccessors) {
  Dataset d = testing::UniformDataset(500, 3, 21);
  Result<CountingTree> tree = CountingTree::Build(d, 4);
  ASSERT_TRUE(tree.ok());
  for (int h = 1; h < 4; ++h) {
    const CountingTree::LevelView level = tree->Level(h);
    for (uint32_t i = 0; i < level.num_cells(); ++i) {
      const CellRef ref = level.ref(i);
      EXPECT_EQ(ref.level, h);
      EXPECT_EQ(ref.index, i);
      EXPECT_EQ(level.counts()[i], tree->Count(ref));
      EXPECT_EQ(level.locs()[i], tree->Loc(ref));
      EXPECT_EQ(level.children()[i], tree->Child(ref));
      EXPECT_EQ(level.used()[i] != 0, tree->Used(ref));
      for (size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(level.half_of(i)[j], tree->HalfCount(ref, j));
      }
      EXPECT_EQ(level.Coords(i), tree->CellCoords(ref));
    }
  }
}

TEST(LevelViewTest, CoordsIntoMatchesCoords) {
  Dataset d = testing::UniformDataset(200, 5, 22);
  Result<CountingTree> tree = CountingTree::Build(d, 4);
  ASSERT_TRUE(tree.ok());
  const CountingTree::LevelView level = tree->Level(2);
  std::vector<uint64_t> scratch(5);
  for (uint32_t i = 0; i < level.num_cells(); ++i) {
    level.CoordsInto(i, scratch.data());
    EXPECT_EQ(scratch, level.Coords(i));
  }
}

TEST(LevelViewTest, UsedSpanReflectsSetUsed) {
  Dataset d = testing::UniformDataset(100, 2, 23);
  Result<CountingTree> tree = CountingTree::Build(d, 4);
  ASSERT_TRUE(tree.ok());
  const CountingTree::LevelView level = tree->Level(1);
  ASSERT_GT(level.num_cells(), 0u);
  tree->SetUsed(level.ref(0), true);
  EXPECT_NE(level.used()[0], 0);
  tree->SetUsed(level.ref(0), false);
  EXPECT_EQ(level.used()[0], 0);
}

}  // namespace
}  // namespace mrcc

// Cross-module integration tests: the full paper pipeline at reduced scale.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "baselines/clusterer.h"
#include "common/rng.h"
#include "core/mrcc.h"
#include "data/catalog.h"
#include "data/dataset_io.h"
#include "data/generator.h"
#include "eval/measurement.h"
#include "eval/quality.h"
#include "test_util.h"

namespace mrcc {
namespace {

// A miniature version of the paper's first-group experiment: MrCC must be
// accurate on every dataset of the group.
TEST(IntegrationTest, MrCCAccurateAcrossMiniGroup1) {
  for (const SyntheticConfig& cfg : Group1Configs(/*scale=*/0.1)) {
    Result<LabeledDataset> ds = GenerateSynthetic(cfg);
    ASSERT_TRUE(ds.ok()) << cfg.name;
    MrCC method;
    RunMeasurement m = MeasureRun(method, *ds);
    ASSERT_TRUE(m.completed) << cfg.name << ": " << m.error;
    EXPECT_GT(m.quality.quality, 0.85) << cfg.name;
  }
}

// MrCC must remain accurate when clusters live in rotated subspaces
// (the paper's rotated-group experiment, Fig. 5p).
TEST(IntegrationTest, MrCCRobustOnMiniRotatedGroup) {
  const auto plain = Group1Configs(0.1);
  const auto rotated = RotatedGroupConfigs(0.1);
  for (size_t i = 0; i < rotated.size(); ++i) {
    Result<LabeledDataset> base = GenerateSynthetic(plain[i]);
    Result<LabeledDataset> rot = GenerateSynthetic(rotated[i]);
    ASSERT_TRUE(base.ok() && rot.ok());
    MrCC method;
    const RunMeasurement mb = MeasureRun(method, *base);
    const RunMeasurement mr = MeasureRun(method, *rot);
    ASSERT_TRUE(mb.completed && mr.completed);
    EXPECT_GT(mr.quality.quality, mb.quality.quality - 0.25)
        << rotated[i].name;
  }
}

// Scalability shape on points: MrCC's time must grow roughly linearly
// (allow a generous factor-3 deviation over a 4x size range).
TEST(IntegrationTest, MrCCTimeScalesRoughlyLinearlyInPoints) {
  SyntheticConfig small = Base14dConfig(0.05);
  SyntheticConfig large = Base14dConfig(0.20);
  Result<LabeledDataset> ds_small = GenerateSynthetic(small);
  Result<LabeledDataset> ds_large = GenerateSynthetic(large);
  ASSERT_TRUE(ds_small.ok() && ds_large.ok());
  MrCC method;
  // Warm up (allocator, caches).
  (void)method.Run(ds_small->data);
  Result<MrCCResult> rs = method.Run(ds_small->data);
  Result<MrCCResult> rl = method.Run(ds_large->data);
  ASSERT_TRUE(rs.ok() && rl.ok());
  const double ratio = rl->stats.total_seconds /
                       std::max(rs->stats.total_seconds, 1e-6);
  EXPECT_LT(ratio, 12.0);  // 4x data -> at most ~3x superlinear slack.
}

// Memory: the Counting-tree footprint must grow linearly in H.
TEST(IntegrationTest, TreeMemoryLinearInResolutions) {
  LabeledDataset ds = testing::SmallClustered(10000, 10, 4, 888);
  std::map<int, size_t> bytes;
  for (int h : {4, 6, 8}) {
    MrCCParams p;
    p.num_resolutions = h;
    Result<MrCCResult> r = MrCC(p).Run(ds.data);
    ASSERT_TRUE(r.ok());
    bytes[h] = r->stats.tree_memory_bytes;
  }
  EXPECT_GT(bytes[6], bytes[4]);
  EXPECT_GT(bytes[8], bytes[6]);
  // Roughly linear: each pair of extra levels adds a near-constant amount
  // (deep levels hold ~eta cells each), so successive increments must be
  // comparable rather than growing geometrically.
  const double inc1 = static_cast<double>(bytes[6] - bytes[4]);
  const double inc2 = static_cast<double>(bytes[8] - bytes[6]);
  EXPECT_LT(inc2, 2.0 * inc1);
}

// The real-data experiment path: KDD08-like data scored against classes.
TEST(IntegrationTest, Kdd08LikePipelineRuns) {
  Kdd08LikeConfig cfg = Kdd08LikeConfigs(/*scale=*/0.2)[1];  // left_mlo.
  Result<Kdd08LikeDataset> ds = GenerateKdd08Like(cfg);
  ASSERT_TRUE(ds.ok());
  MrCC method;
  const RunMeasurement m = MeasureRunAgainstClasses(
      method, ds->labeled.data, ds->class_labels, cfg.name);
  ASSERT_TRUE(m.completed) << m.error;
  EXPECT_GT(m.quality.quality, 0.3);
  EXPECT_GT(m.clusters_found, 0u);
}

// Dataset round trip through the binary format preserves MrCC's output.
TEST(IntegrationTest, PersistedDatasetGivesIdenticalClustering) {
  LabeledDataset ds = testing::SmallClustered(3000, 8, 3, 999);
  const std::string path = ::testing::TempDir() + "mrcc_integration.bin";
  ASSERT_TRUE(SaveBinary(ds.data, path, &ds.truth.labels).ok());
  std::vector<int> labels;
  Result<Dataset> loaded = LoadBinary(path, &labels);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(labels, ds.truth.labels);
  MrCC method;
  Result<MrCCResult> a = method.Run(ds.data);
  Result<MrCCResult> b = method.Run(*loaded);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->clustering.labels, b->clustering.labels);
  std::remove(path.c_str());
}

// Randomized pipeline fuzzing: arbitrary generator configurations must
// never crash, always produce internally consistent output, and stay
// deterministic.
class PipelineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzz, InvariantsHoldForRandomConfigs) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  SyntheticConfig cfg;
  cfg.num_dims = 2 + rng.UniformInt(16);           // 2..17 axes.
  cfg.num_points = 500 + rng.UniformInt(8000);     // 500..8500 points.
  cfg.num_clusters = 1 + rng.UniformInt(8);        // 1..8 clusters.
  cfg.noise_fraction = rng.Uniform(0.0, 0.4);
  cfg.min_cluster_dims = 1 + rng.UniformInt(cfg.num_dims);
  cfg.max_cluster_dims =
      cfg.min_cluster_dims +
      rng.UniformInt(cfg.num_dims - cfg.min_cluster_dims + 1);
  cfg.num_rotations = rng.UniformInt(3) == 0 ? 4 : 0;
  cfg.seed = seed;
  Result<LabeledDataset> ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  ASSERT_TRUE(ds->data.InUnitCube());

  MrCCParams params;
  params.alpha = std::pow(10.0, -2.0 - static_cast<double>(rng.UniformInt(30)));
  params.num_resolutions = 3 + static_cast<int>(rng.UniformInt(5));
  MrCC method(params);
  Result<MrCCResult> a = method.Run(ds->data);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(a->clustering.Validate(ds->data.NumPoints(), ds->data.NumDims())
                  .ok());
  // Beta-to-cluster map is consistent.
  ASSERT_EQ(a->beta_to_cluster.size(), a->beta_clusters.size());
  for (int c : a->beta_to_cluster) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, static_cast<int>(a->clustering.NumClusters()));
  }
  // Every non-noise point lies inside at least one box of its cluster.
  for (size_t i = 0; i < ds->data.NumPoints(); ++i) {
    const int label = a->clustering.labels[i];
    if (label == kNoiseLabel) continue;
    bool contained = false;
    for (size_t b = 0; b < a->beta_clusters.size() && !contained; ++b) {
      contained = a->beta_to_cluster[b] == label &&
                  a->beta_clusters[b].Contains(ds->data.Point(i));
    }
    ASSERT_TRUE(contained) << "point " << i << " seed " << seed;
  }
  // Determinism.
  Result<MrCCResult> b = method.Run(ds->data);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->clustering.labels, b->clustering.labels);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<uint64_t>(1, 21));

// All paper methods produce disjoint clusterings the evaluator accepts,
// and MrCC is the fastest on a mid-size dataset (the paper's headline).
TEST(IntegrationTest, MrCCFastestAmongAccurateMethods) {
  SyntheticConfig cfg = Base14dConfig(0.08);
  Result<LabeledDataset> ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());
  MethodTuning tuning;
  tuning.num_clusters = cfg.num_clusters;
  tuning.noise_fraction = cfg.noise_fraction;

  double mrcc_seconds = 0.0;
  double best_competitor_seconds = 1e9;
  for (const std::string& name : PaperMethodNames()) {
    auto method = MakeClusterer(name, tuning);
    ASSERT_TRUE(method.ok());
    const RunMeasurement m = MeasureRun(**method, *ds, /*budget=*/120.0);
    if (!m.completed) continue;  // Timeouts allowed for slow baselines.
    if (name == "MrCC") {
      mrcc_seconds = m.seconds;
      EXPECT_GT(m.quality.quality, 0.8);
    } else {
      best_competitor_seconds = std::min(best_competitor_seconds, m.seconds);
    }
  }
  ASSERT_GT(mrcc_seconds, 0.0);
  // MrCC within the paper's "fastest" claim, with slack for the scaled-
  // down data (our LAC converges quickly on easy small datasets, while
  // the paper measured it ~10x slower than MrCC at 90k+ points).
  EXPECT_LT(mrcc_seconds, 3.0 * best_competitor_seconds);
}

}  // namespace
}  // namespace mrcc

// Reproduces Fig. 4: MrCC's sensitivity to its two parameters over the
// first synthetic group.
//   Fig. 4a-c  Quality / memory / time as alpha sweeps 1e-3 .. 1e-160
//              (H fixed at 4).
//   Fig. 4d-f  Quality / memory / time as H sweeps 4 .. 80
//              (alpha fixed at 1e-10).
//
// Expected shape: best alpha between 1e-5 and 1e-20, costs flat in alpha;
// Quality flat for H >= 4 while time grows super-linearly and memory
// linearly with H.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "core/mrcc.h"
#include "data/catalog.h"

namespace {

using namespace mrcc;
using namespace mrcc::bench;

RunMeasurement MeasureMrCC(const MrCCParams& params,
                           const LabeledDataset& dataset,
                           const std::string& tag) {
  MrCC method(params);
  RunMeasurement m = MeasureRun(method, dataset);
  m.method = tag;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  BenchRecorder recorder("sensitivity", options);
  std::printf("== sensitivity analysis ==\n");
  std::printf("reproduces Fig. 4 | scale=%.3g (MrCC only)\n", options.scale);

  ResultSink alpha_sink("sensitivity_alpha", options, &recorder);
  const double alphas[] = {1e-3, 1e-5, 1e-10, 1e-20, 1e-40, 1e-80, 1e-160};
  ResultSink h_sink("sensitivity_h", options, &recorder);
  const int resolutions[] = {4, 5, 10, 20, 40, 80};

  for (const SyntheticConfig& config : Group1Configs(options.scale)) {
    const LabeledDataset dataset = MustGenerate(config, options.data_dir);

    std::printf("-- %s: alpha sweep (H = 4), Fig. 4a-c --\n",
                config.name.c_str());
    for (double alpha : alphas) {
      MrCCParams params;
      params.alpha = alpha;
      params.num_resolutions = 4;
      char tag[32];
      std::snprintf(tag, sizeof(tag), "a=%.0e", alpha);
      alpha_sink.Add(MeasureMrCC(params, dataset, tag));
    }

    std::printf("-- %s: H sweep (alpha = 1e-10), Fig. 4d-f --\n",
                config.name.c_str());
    for (int h : resolutions) {
      MrCCParams params;
      params.alpha = 1e-10;
      params.num_resolutions = h;
      char tag[32];
      std::snprintf(tag, sizeof(tag), "H=%d", h);
      h_sink.Add(MeasureMrCC(params, dataset, tag));
    }
  }
  return recorder.Finish();
}

# Empty compiler generated dependencies file for orclus_test.
# This may be replaced when dependencies are built.

#include "core/intrinsic_dimension.h"

#include <cmath>

namespace mrcc {

std::vector<BoxCountPoint> BoxCountingCurve(const CountingTree& tree) {
  std::vector<BoxCountPoint> curve;
  const double eta = static_cast<double>(tree.total_points());
  for (int h = 1; h < tree.num_resolutions(); ++h) {
    BoxCountPoint point;
    point.level = h;
    double s2 = 0.0;
    const CountingTree::LevelView level = tree.Level(h);
    for (uint32_t n : level.counts()) {
      const double p = static_cast<double>(n) / eta;
      s2 += p * p;
      ++point.cells;
    }
    point.log2_s2 = std::log2(s2);
    curve.push_back(point);
  }
  return curve;
}

Result<double> CorrelationFractalDimension(const CountingTree& tree) {
  const std::vector<BoxCountPoint> curve = BoxCountingCurve(tree);

  // Drop saturated levels: once nearly every occupied cell holds a single
  // point, refining further only renames cells (S2 stops moving) and the
  // flat tail would bias the slope toward zero.
  const double eta = static_cast<double>(tree.total_points());
  std::vector<const BoxCountPoint*> usable;
  for (const BoxCountPoint& point : curve) {
    if (static_cast<double>(point.cells) < 0.9 * eta) {
      usable.push_back(&point);
    }
  }
  if (usable.size() < 2) {
    return Status::InvalidArgument(
        "not enough unsaturated tree levels to fit D2 (deepen the tree or "
        "add data)");
  }

  // Least squares of y = log2 S2 against x = -h; D2 is the slope.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const double m = static_cast<double>(usable.size());
  for (const BoxCountPoint* point : usable) {
    const double x = -static_cast<double>(point->level);
    sx += x;
    sy += point->log2_s2;
    sxx += x * x;
    sxy += x * point->log2_s2;
  }
  const double denom = m * sxx - sx * sx;
  if (denom == 0.0) return Status::Internal("degenerate box-count fit");
  return (m * sxy - sx * sy) / denom;
}

Result<double> EstimateIntrinsicDimension(const Dataset& data,
                                          int num_resolutions) {
  Result<CountingTree> tree = CountingTree::Build(data, num_resolutions);
  if (!tree.ok()) return tree.status();
  return CorrelationFractalDimension(*tree);
}

}  // namespace mrcc

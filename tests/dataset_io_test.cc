#include "data/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "test_util.h"

namespace mrcc {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return ::testing::TempDir() + "mrcc_io_" + name;
  }
};

TEST_F(DatasetIoTest, CsvRoundTrip) {
  Dataset d = testing::MakeDataset({{0.25, 0.5}, {0.75, 0.125}});
  const std::string path = Path("plain.csv");
  ASSERT_TRUE(SaveCsv(d, path).ok());
  Result<Dataset> loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->NumPoints(), 2u);
  ASSERT_EQ(loaded->NumDims(), 2u);
  EXPECT_DOUBLE_EQ((*loaded)(1, 0), 0.75);
  std::remove(path.c_str());
}

TEST_F(DatasetIoTest, CsvRoundTripWithLabels) {
  Dataset d = testing::MakeDataset({{0.1}, {0.2}, {0.3}});
  const std::vector<int> labels{1, kNoiseLabel, 0};
  const std::string path = Path("labels.csv");
  ASSERT_TRUE(SaveCsv(d, path, &labels).ok());
  std::vector<int> loaded_labels;
  Result<Dataset> loaded = LoadCsv(path, /*has_label_column=*/true,
                                   &loaded_labels);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumDims(), 1u);
  EXPECT_EQ(loaded_labels, labels);
  std::remove(path.c_str());
}

TEST_F(DatasetIoTest, CsvPreservesPrecision) {
  Dataset d = testing::MakeDataset({{0.12345678901234567}});
  const std::string path = Path("precision.csv");
  ASSERT_TRUE(SaveCsv(d, path).ok());
  Result<Dataset> loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ((*loaded)(0, 0), 0.12345678901234567);
  std::remove(path.c_str());
}

TEST_F(DatasetIoTest, CsvLabelSizeMismatchRejected) {
  Dataset d = testing::MakeDataset({{0.1}, {0.2}});
  const std::vector<int> labels{0};
  EXPECT_EQ(SaveCsv(d, Path("bad.csv"), &labels).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DatasetIoTest, CsvMissingFileIsIOError) {
  Result<Dataset> r = LoadCsv("/nonexistent/dir/file.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(DatasetIoTest, CsvMalformedFieldIsIOError) {
  const std::string path = Path("malformed.csv");
  {
    std::ofstream out(path);
    out << "0.5,abc\n";
  }
  Result<Dataset> r = LoadCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST_F(DatasetIoTest, CsvInconsistentColumnsIsIOError) {
  const std::string path = Path("jagged.csv");
  {
    std::ofstream out(path);
    out << "0.5,0.25\n0.5\n";
  }
  Result<Dataset> r = LoadCsv(path);
  ASSERT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST_F(DatasetIoTest, BinaryRoundTrip) {
  Dataset d = testing::UniformDataset(100, 7, 42);
  const std::string path = Path("plain.bin");
  ASSERT_TRUE(SaveBinary(d, path).ok());
  Result<Dataset> loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->NumPoints(), 100u);
  ASSERT_EQ(loaded->NumDims(), 7u);
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = 0; j < 7; ++j) {
      ASSERT_DOUBLE_EQ((*loaded)(i, j), d(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST_F(DatasetIoTest, BinaryRoundTripWithLabels) {
  Dataset d = testing::MakeDataset({{0.5}, {0.25}});
  const std::vector<int> labels{7, kNoiseLabel};
  const std::string path = Path("labels.bin");
  ASSERT_TRUE(SaveBinary(d, path, &labels).ok());
  std::vector<int> loaded_labels;
  Result<Dataset> loaded = LoadBinary(path, &loaded_labels);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded_labels, labels);
  std::remove(path.c_str());
}

TEST_F(DatasetIoTest, BinaryRejectsBadMagic) {
  const std::string path = Path("badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE and then some bytes";
  }
  Result<Dataset> r = LoadBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST_F(DatasetIoTest, BinaryRejectsTruncatedFile) {
  Dataset d = testing::UniformDataset(50, 3, 1);
  const std::string path = Path("trunc.bin");
  ASSERT_TRUE(SaveBinary(d, path).ok());
  // Truncate to half.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  Result<Dataset> r = LoadBinary(path);
  ASSERT_FALSE(r.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mrcc

// β-cluster search (paper §III-B, Algorithm 2).
//
// Repeatedly sweeps Counting-tree levels 2..H-1, coarse to fine. At each
// level the face-only Laplacian response selects the densest still-unused
// cell that does not overlap a previously found β-cluster; a one-sided
// binomial test on the parent-level neighborhood decides whether that
// region stands out statistically. On success the per-axis relevances are
// cut by MDL into relevant/irrelevant, the bounds are grown by populated
// face neighbors, and the sweep restarts from level 2. The search ends
// after a full sweep with no statistically significant candidate.

#pragma once

#include <cstdint>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "core/counting_tree.h"

namespace mrcc {

/// A candidate correlation cluster: a hyper-box with per-axis relevance.
/// Bounds on irrelevant axes span the whole cube [0, 1].
struct BetaCluster {
  /// Lower/upper bound per axis (the paper's L[k][j], U[k][j]).
  std::vector<double> lower;
  std::vector<double> upper;

  /// relevant[j] == true when axis e_j is relevant (the paper's V[k][j]).
  std::vector<bool> relevant;

  /// Diagnostic: per-axis relevance r[j] = 100 * cP_j / nP_j.
  std::vector<double> relevance;

  /// Tree level where the center cell was found.
  int level = 0;

  /// Point count of the center cell.
  uint32_t center_count = 0;

  /// True when this β-cluster's box overlaps `other`'s box on every axis
  /// (the paper's shares-space predicate over L and U).
  bool SharesSpaceWith(const BetaCluster& other) const;

  /// True when the point lies inside the box (inclusive bounds).
  bool Contains(std::span<const double> point) const;
};

struct BetaFinderOptions {
  /// Significance level of the one-sided binomial test (paper's alpha).
  double alpha = 1e-10;

  /// Ablation knob: convolve with the full order-3 Laplacian mask (all
  /// 3^d - 1 neighbors at weight -1) instead of the production face-only
  /// mask. The paper argues the full mask "improves a little" but costs
  /// O(3^d) per cell. Above kMaxFullMaskDims, FindBetaClusters silently
  /// falls back to the face-only mask (MrCC::Run rejects the combination
  /// instead).
  bool full_mask = false;

  /// Worker threads for the convolution sweep and the per-level argmax
  /// (1 = serial, 0 = hardware concurrency). Per-cell convolutions are
  /// independent and the argmax reduction breaks ties by the lowest cell
  /// index, so every thread count yields bit-identical β-clusters.
  int num_threads = 1;
};

/// Work counters of one β-cluster search. Deterministic like the search
/// itself — the same tree and options produce the same counts at any
/// thread count — so they double as cheap regression probes ("did this
/// change run more binomial tests?") in MrCCStats and the metrics
/// registry.
struct BetaSearchStats {
  /// Laplacian responses computed (== materialized cells of levels
  /// 2..H-1, each convolved exactly once).
  uint64_t cells_convolved = 0;

  /// Argmax candidates that reached the statistical test.
  uint64_t candidates_tested = 0;

  /// Per-axis one-sided binomial tests run (d per candidate).
  uint64_t binomial_tests = 0;

  /// Candidates accepted as β-clusters (== number of β-clusters found).
  uint64_t accepted = 0;

  /// True when the search stopped early because the caller's wall-clock
  /// budget ran out; the returned β-clusters are a valid prefix of the
  /// full search (the sweep is deterministic, so everything found before
  /// the cut stands).
  bool deadline_hit = false;
};

/// Everything one β-cluster search produces: the clusters plus the work
/// counters of the run. Returned by value — stage APIs take no mutable
/// stats out-params; MrCCStats aggregates these sub-structs.
struct BetaSearchResult {
  std::vector<BetaCluster> betas;
  BetaSearchStats stats;
};

/// Runs Algorithm 2 over `tree`. Consumes the tree's usedCell flags (call
/// tree.ResetUsedFlags() to reuse the tree). Deterministic.
///
/// When `budget` is non-null its deadline is checked at every level
/// boundary; on expiry the search returns the β-clusters found so far
/// with stats.deadline_hit set — a partial result, not an error. A
/// non-OK status only signals a real failure (the `beta.search.alloc`
/// failpoint stands in for level-cache allocation failure).
[[nodiscard]] Result<BetaSearchResult> RunBetaSearch(CountingTree& tree,
                                       const BetaFinderOptions& options,
                                       BudgetTracker* budget = nullptr);

/// Value-returning convenience wrapper over RunBetaSearch with no budget.
/// Without a budget and without armed failpoints the search cannot fail,
/// so this keeps the original ergonomic signature for callers that own
/// their tree (tests, tools); the pipeline goes through RunBetaSearch.
std::vector<BetaCluster> FindBetaClusters(CountingTree& tree,
                                          const BetaFinderOptions& options);

}  // namespace mrcc


#include "eval/quality.h"

#include <gtest/gtest.h>

#include <vector>

namespace mrcc {
namespace {

Clustering MakeClustering(std::vector<int> labels, size_t k, size_t dims,
                          std::vector<std::vector<bool>> axes = {}) {
  Clustering c;
  c.labels = std::move(labels);
  c.clusters.resize(k);
  for (size_t i = 0; i < k; ++i) {
    c.clusters[i].relevant_axes =
        axes.empty() ? std::vector<bool>(dims, true) : axes[i];
  }
  return c;
}

TEST(QualityTest, PerfectMatchScoresOne) {
  Clustering truth = MakeClustering({0, 0, 1, 1, kNoiseLabel}, 2, 3);
  Clustering found = MakeClustering({0, 0, 1, 1, kNoiseLabel}, 2, 3);
  const QualityReport q = EvaluateClustering(found, truth);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.quality, 1.0);
  EXPECT_DOUBLE_EQ(q.subspace_quality, 1.0);
}

TEST(QualityTest, PermutedLabelsStillPerfect) {
  Clustering truth = MakeClustering({0, 0, 1, 1}, 2, 2);
  Clustering found = MakeClustering({1, 1, 0, 0}, 2, 2);
  const QualityReport q = EvaluateClustering(found, truth);
  EXPECT_DOUBLE_EQ(q.quality, 1.0);
}

TEST(QualityTest, NoFoundClustersScoresZero) {
  Clustering truth = MakeClustering({0, 0, 1}, 2, 2);
  Clustering found = MakeClustering({kNoiseLabel, kNoiseLabel, kNoiseLabel},
                                    0, 2);
  const QualityReport q = EvaluateClustering(found, truth);
  EXPECT_DOUBLE_EQ(q.quality, 0.0);
  EXPECT_DOUBLE_EQ(q.subspace_quality, 0.0);
}

TEST(QualityTest, HandComputedPrecisionRecall) {
  // Truth: cluster 0 = {0,1,2,3}, cluster 1 = {4,5}.
  // Found: cluster 0 = {0,1,4} (3 pts: 2 from real 0, 1 from real 1),
  //        cluster 1 = {2,3,5} (2 from real 0, 1 from real 1).
  Clustering truth = MakeClustering({0, 0, 0, 0, 1, 1}, 2, 2);
  Clustering found = MakeClustering({0, 0, 1, 1, 0, 1}, 2, 2);
  const QualityReport q = EvaluateClustering(found, truth);
  // Found 0 dominant real: 0 (|∩|=2), precision 2/3.
  // Found 1 dominant real: 0 (|∩|=2), precision 2/3.
  EXPECT_NEAR(q.precision, 2.0 / 3.0, 1e-12);
  // Real 0 dominant found: 0 or 1 (|∩|=2), recall 2/4.
  // Real 1 dominant found: 0 or 1 (|∩|=1), recall 1/2.
  EXPECT_NEAR(q.recall, 0.5, 1e-12);
  EXPECT_NEAR(q.quality,
              2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5), 1e-12);
}

TEST(QualityTest, NoiseDoesNotContributeToIntersections) {
  Clustering truth = MakeClustering({0, 0, kNoiseLabel, kNoiseLabel}, 1, 2);
  Clustering found = MakeClustering({0, 0, 0, 0}, 1, 2);
  const QualityReport q = EvaluateClustering(found, truth);
  // Found cluster holds 4 points but only 2 real: precision 0.5.
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

TEST(QualityTest, SubspaceQualityUsesAxisSets) {
  // Points match perfectly, axes half-match.
  std::vector<std::vector<bool>> truth_axes{{true, true, false, false}};
  std::vector<std::vector<bool>> found_axes{{true, false, true, false}};
  Clustering truth = MakeClustering({0, 0}, 1, 4, truth_axes);
  Clustering found = MakeClustering({0, 0}, 1, 4, found_axes);
  const QualityReport q = EvaluateClustering(found, truth);
  EXPECT_DOUBLE_EQ(q.quality, 1.0);
  // |found ∩ truth| = 1; |found| = 2; |truth| = 2.
  EXPECT_DOUBLE_EQ(q.subspace_precision, 0.5);
  EXPECT_DOUBLE_EQ(q.subspace_recall, 0.5);
  EXPECT_DOUBLE_EQ(q.subspace_quality, 0.5);
}

TEST(QualityTest, DominantMapsExposed) {
  Clustering truth = MakeClustering({0, 0, 1}, 2, 2);
  Clustering found = MakeClustering({1, 1, 0}, 2, 2);
  const QualityReport q = EvaluateClustering(found, truth);
  ASSERT_EQ(q.dominant_real.size(), 2u);
  ASSERT_EQ(q.dominant_found.size(), 2u);
  EXPECT_EQ(q.dominant_real[1], 0);  // Found 1 dominated by real 0.
  EXPECT_EQ(q.dominant_real[0], 1);
  EXPECT_EQ(q.dominant_found[0], 1);
  EXPECT_EQ(q.dominant_found[1], 0);
}

TEST(QualityTest, FoundClusterWithNoRealOverlapHasNoDominant) {
  // Found cluster 1 contains only noise points.
  Clustering truth = MakeClustering({0, 0, kNoiseLabel, kNoiseLabel}, 1, 2);
  Clustering found = MakeClustering({0, 0, 1, 1}, 2, 2);
  const QualityReport q = EvaluateClustering(found, truth);
  EXPECT_EQ(q.dominant_real[1], -1);
  // Its precision contribution is zero: average = (1 + 0) / 2.
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
}

TEST(QualityTest, AgainstClassesUsesClassLabels) {
  Clustering found = MakeClustering({0, 0, 1, 1, kNoiseLabel}, 2, 3);
  const std::vector<int> classes{0, 0, 1, 1, 1};
  const QualityReport q = EvaluateAgainstClasses(found, classes);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  // Class 0 fully covered; class 1 covered 2/3.
  EXPECT_NEAR(q.recall, (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(QualityTest, HarmonicMeanIsZeroWhenEitherSideZero) {
  Clustering truth = MakeClustering({0}, 1, 2);
  // One found cluster consisting solely of a noise point.
  Clustering found = MakeClustering({kNoiseLabel}, 1, 2);
  const QualityReport q = EvaluateClustering(found, truth);
  EXPECT_DOUBLE_EQ(q.quality, 0.0);
}

}  // namespace
}  // namespace mrcc

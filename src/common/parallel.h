// Thread-pool and parallel-for primitives for the execution engine.
//
// Every parallel stage in MrCC follows the same discipline: the index
// range [0, n) is cut into num_threads contiguous slices whose boundaries
// depend only on (n, num_threads), each worker owns one slice, and the
// per-slice results are reduced on the calling thread in slice order.
// Combined with order-invariant reductions (additive counts, min-index
// argmax) this makes every pipeline stage bit-deterministic: the result is
// a pure function of the input, not of the thread count or scheduling.
//
// A ThreadPool built with one thread spawns no workers and runs bodies
// inline on the caller — num_threads == 1 is exactly the serial code path.

#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mrcc {

/// Maps a user-facing thread-count knob to an actual worker count:
/// 0 selects std::thread::hardware_concurrency(), anything else is taken
/// verbatim; the result is always >= 1.
int ResolveThreadCount(int requested);

/// Slice boundaries of the contiguous block owned by `thread_index` when
/// [0, n) is split across `num_threads` workers. Deterministic in
/// (n, num_threads) only; every index is covered exactly once.
inline size_t SliceBegin(size_t n, int num_threads, int thread_index) {
  return n * static_cast<size_t>(thread_index) /
         static_cast<size_t>(num_threads);
}
inline size_t SliceEnd(size_t n, int num_threads, int thread_index) {
  return n * (static_cast<size_t>(thread_index) + 1) /
         static_cast<size_t>(num_threads);
}

/// A fixed set of worker threads executing parallel-for bodies.
///
/// The pool keeps num_threads - 1 blocked workers; the calling thread acts
/// as worker 0 so a ParallelFor never pays a context switch when the pool
/// has one thread. ParallelFor blocks until every slice completed, so a
/// pool can be reused across many (sequential) parallel regions cheaply —
/// the β-cluster search issues thousands per run.
///
/// ParallelFor calls must not be nested or issued from two threads at
/// once; the engine only ever runs one parallel stage at a time.
class ThreadPool {
 public:
  /// `num_threads` must be >= 1 (use ResolveThreadCount to map the 0 =
  /// auto knob). One thread means no workers and inline execution.
  ///
  /// Worker spawn failure (thread-limit pressure, or the `pool.spawn`
  /// failpoint) degrades gracefully: the pool keeps the workers it got
  /// and runs with that count — every stage is bit-deterministic in the
  /// thread count, so the results are unchanged and only throughput
  /// drops. Callers sizing per-thread state must therefore read
  /// num_threads() back instead of assuming the requested count; the
  /// shortfall is counted in the `pool.spawn_failures` metric.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(thread_index, begin, end) for every non-empty slice of
  /// [0, n), slice t on thread t, and returns when all slices finished.
  /// The body must confine writes to slice-owned (or thread-owned) state.
  void ParallelFor(size_t n,
                   const std::function<void(int, size_t, size_t)>& body);

 private:
  void WorkerLoop(int thread_index);

  /// Set once in the constructor (possibly below the requested count on
  /// spawn failure) and immutable afterwards; workers read it only after
  /// synchronizing through mu_ in ParallelFor.
  int num_threads_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar start_cv_;
  CondVar done_cv_;
  /// Bumped once per ParallelFor; workers detect new work by comparing it
  /// against the last generation they ran.
  uint64_t generation_ MRCC_GUARDED_BY(mu_) = 0;
  /// Workers still running the current body.
  int pending_ MRCC_GUARDED_BY(mu_) = 0;
  bool shutdown_ MRCC_GUARDED_BY(mu_) = false;
  size_t n_ MRCC_GUARDED_BY(mu_) = 0;
  const std::function<void(int, size_t, size_t)>* body_
      MRCC_GUARDED_BY(mu_) = nullptr;
};

}  // namespace mrcc


#include "baselines/clique.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/mdl.h"
#include "common/union_find.h"

namespace mrcc {
namespace {

// A unit is a list of (dim, bin) constraints with strictly increasing dims.
using Item = uint32_t;  // dim * grid_partitions + bin.
using Unit = std::vector<Item>;

struct UnitHash {
  size_t operator()(const Unit& u) const {
    size_t h = 1469598103934665603ULL;
    for (Item item : u) {
      h ^= item;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

using UnitCounts = std::unordered_map<Unit, uint32_t, UnitHash>;

// Candidate-explosion guard; CLIQUE's merging step is exponential in the
// subspace dimensionality (one of the drawbacks the paper lists), so we
// fail loudly instead of thrashing.
constexpr size_t kMaxCandidates = 2'000'000;

uint32_t DimOf(Item item, size_t xi) { return item / static_cast<Item>(xi); }
uint32_t BinOf(Item item, size_t xi) { return item % static_cast<Item>(xi); }

// Apriori join: units agreeing on all but the last item, whose last items
// constrain different dims.
std::vector<Unit> JoinCandidates(const std::vector<Unit>& dense, size_t xi) {
  std::vector<Unit> candidates;
  for (size_t a = 0; a < dense.size(); ++a) {
    for (size_t b = a + 1; b < dense.size(); ++b) {
      const Unit& ua = dense[a];
      const Unit& ub = dense[b];
      if (!std::equal(ua.begin(), ua.end() - 1, ub.begin())) continue;
      const Item last_a = ua.back();
      const Item last_b = ub.back();
      if (DimOf(last_a, xi) == DimOf(last_b, xi)) continue;
      Unit joined = ua;
      joined.push_back(std::max(last_a, last_b));
      joined[joined.size() - 2] = std::min(last_a, last_b);
      candidates.push_back(std::move(joined));
      if (candidates.size() > kMaxCandidates) return candidates;
    }
  }
  return candidates;
}

// Prune candidates having a non-dense (k-1)-subset.
std::vector<Unit> PruneBySubsets(std::vector<Unit> candidates,
                                 const UnitCounts& dense_prev) {
  std::vector<Unit> kept;
  Unit subset;
  for (Unit& cand : candidates) {
    bool ok = true;
    for (size_t drop = 0; drop < cand.size() && ok; ++drop) {
      subset.clear();
      for (size_t i = 0; i < cand.size(); ++i) {
        if (i != drop) subset.push_back(cand[i]);
      }
      ok = dense_prev.contains(subset);
    }
    if (ok) kept.push_back(std::move(cand));
  }
  return kept;
}

}  // namespace

Clique::Clique(CliqueParams params) : params_(params) {}

Result<Clustering> Clique::Cluster(const Dataset& data) {
  StartClock();
  const size_t n = data.NumPoints();
  const size_t d = data.NumDims();
  const size_t xi = params_.grid_partitions;
  if (xi < 2) return Status::InvalidArgument("CLIQUE requires xi >= 2");
  const double min_count = params_.density_threshold * static_cast<double>(n);

  // Precompute each point's bin per axis.
  std::vector<uint32_t> bins(n * d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double v = data(i, j);
      uint32_t b = static_cast<uint32_t>(v * static_cast<double>(xi));
      if (b >= xi) b = static_cast<uint32_t>(xi) - 1;
      bins[i * d + j] = b;
    }
  }

  // Level 1: dense 1-d units.
  UnitCounts dense_prev;
  {
    std::vector<uint32_t> counts(d * xi, 0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) {
        ++counts[j * xi + bins[i * d + j]];
      }
    }
    for (size_t j = 0; j < d; ++j) {
      for (size_t b = 0; b < xi; ++b) {
        if (counts[j * xi + b] > min_count) {
          dense_prev.emplace(
              Unit{static_cast<Item>(j * xi + b)}, counts[j * xi + b]);
        }
      }
    }
  }

  // All dense units of every level, for cluster extraction.
  std::vector<std::pair<Unit, uint32_t>> all_dense(dense_prev.begin(),
                                                   dense_prev.end());

  size_t level = 1;
  while (!dense_prev.empty() &&
         (params_.max_subspace_dims == 0 || level < params_.max_subspace_dims)) {
    if (TimeExpired()) return TimeoutStatus();
    std::vector<Unit> prev_units;
    prev_units.reserve(dense_prev.size());
    for (const auto& [unit, count] : dense_prev) prev_units.push_back(unit);
    std::sort(prev_units.begin(), prev_units.end());

    std::vector<Unit> candidates = JoinCandidates(prev_units, xi);
    if (candidates.size() > kMaxCandidates) {
      return Status::OutOfRange(
          "CLIQUE candidate explosion (exponential merging step)");
    }
    candidates = PruneBySubsets(std::move(candidates), dense_prev);
    if (candidates.empty()) break;

    // Count supports with one data scan.
    UnitCounts counts;
    counts.reserve(candidates.size());
    for (Unit& c : candidates) counts.emplace(std::move(c), 0);
    for (size_t i = 0; i < n; ++i) {
      if (TimeExpired()) return TimeoutStatus();
      for (auto& [unit, count] : counts) {
        bool inside = true;
        for (Item item : unit) {
          if (bins[i * d + DimOf(item, xi)] != BinOf(item, xi)) {
            inside = false;
            break;
          }
        }
        if (inside) ++count;
      }
    }

    UnitCounts dense_now;
    for (auto& [unit, count] : counts) {
      if (count > min_count) {
        all_dense.emplace_back(unit, count);
        dense_now.emplace(unit, count);
      }
    }
    dense_prev = std::move(dense_now);
    ++level;
  }

  // Group dense units by subspace (set of dims) and compute coverage.
  std::map<std::vector<uint32_t>, std::vector<size_t>> by_subspace;
  for (size_t u = 0; u < all_dense.size(); ++u) {
    std::vector<uint32_t> dims;
    for (Item item : all_dense[u].first) dims.push_back(DimOf(item, xi));
    by_subspace[dims].push_back(u);
  }

  // MDL pruning of subspaces by coverage, keeping only maximal subspaces
  // (no dense superset-subspace) to curb redundancy.
  std::vector<std::vector<uint32_t>> subspaces;
  std::vector<double> coverages;
  for (const auto& [dims, units] : by_subspace) {
    bool maximal = true;
    for (const auto& [other, _] : by_subspace) {
      if (other.size() > dims.size() &&
          std::includes(other.begin(), other.end(), dims.begin(),
                        dims.end())) {
        maximal = false;
        break;
      }
    }
    if (!maximal) continue;
    double coverage = 0.0;
    for (size_t u : units) coverage += all_dense[u].second;
    subspaces.push_back(dims);
    coverages.push_back(coverage);
  }
  if (subspaces.empty()) {
    Clustering out;
    out.labels.assign(n, kNoiseLabel);
    return out;
  }
  double coverage_cut = 0.0;
  if (params_.mdl_pruning && coverages.size() > 1) {
    std::vector<double> sorted = coverages;
    std::sort(sorted.begin(), sorted.end());
    coverage_cut = MdlThreshold(sorted);
  }

  // Clusters: connected components of dense units per selected subspace.
  struct CliqueCluster {
    std::vector<uint32_t> dims;
    std::unordered_map<Unit, int, UnitHash> unit_of;  // unit -> component.
    std::vector<int> component_cluster;  // component -> global cluster id.
  };
  Clustering out;
  out.labels.assign(n, kNoiseLabel);
  std::vector<CliqueCluster> selected;
  std::vector<size_t> cluster_dims_count;  // Global cluster dimensionality.

  for (size_t s = 0; s < subspaces.size(); ++s) {
    if (coverages[s] < coverage_cut) continue;
    const auto& dims = subspaces[s];
    const auto& unit_ids = by_subspace[dims];
    UnionFind uf(unit_ids.size());
    std::unordered_map<Unit, uint32_t, UnitHash> local;
    for (size_t idx = 0; idx < unit_ids.size(); ++idx) {
      local.emplace(all_dense[unit_ids[idx]].first, idx);
    }
    for (size_t idx = 0; idx < unit_ids.size(); ++idx) {
      const Unit& unit = all_dense[unit_ids[idx]].first;
      // Probe face-adjacent units (one bin step along each constrained dim).
      for (size_t pos = 0; pos < unit.size(); ++pos) {
        for (int step : {-1, +1}) {
          const uint32_t bin = BinOf(unit[pos], xi);
          if ((step < 0 && bin == 0) || (step > 0 && bin + 1 >= xi)) continue;
          Unit probe = unit;
          probe[pos] = static_cast<Item>(unit[pos] + step);
          auto it = local.find(probe);
          if (it != local.end()) uf.Union(idx, it->second);
        }
      }
    }
    CliqueCluster cc;
    cc.dims = dims;
    std::vector<size_t> comp = uf.DenseIds();
    cc.component_cluster.assign(uf.NumSets(), -1);
    for (size_t idx = 0; idx < unit_ids.size(); ++idx) {
      cc.unit_of.emplace(all_dense[unit_ids[idx]].first,
                         static_cast<int>(comp[idx]));
    }
    for (size_t comp_id = 0; comp_id < uf.NumSets(); ++comp_id) {
      ClusterInfo info;
      info.relevant_axes.assign(d, false);
      for (uint32_t dim : dims) info.relevant_axes[dim] = true;
      cc.component_cluster[comp_id] = static_cast<int>(out.clusters.size());
      out.clusters.push_back(std::move(info));
      cluster_dims_count.push_back(dims.size());
    }
    selected.push_back(std::move(cc));
  }

  // Disjoint assignment: containing cluster of highest dimensionality.
  Unit probe;
  for (size_t i = 0; i < n; ++i) {
    int best_cluster = kNoiseLabel;
    size_t best_dims = 0;
    for (const CliqueCluster& cc : selected) {
      probe.clear();
      for (uint32_t dim : cc.dims) {
        probe.push_back(static_cast<Item>(dim * xi + bins[i * d + dim]));
      }
      auto it = cc.unit_of.find(probe);
      if (it == cc.unit_of.end()) continue;
      const int cluster = cc.component_cluster[static_cast<size_t>(it->second)];
      if (cc.dims.size() > best_dims) {
        best_dims = cc.dims.size();
        best_cluster = cluster;
      }
    }
    out.labels[i] = best_cluster;
  }
  return out;
}

}  // namespace mrcc

# Empty compiler generated dependencies file for rotated_subspaces.
# This may be replaced when dependencies are built.

// Counting-tree persistence and merging.
//
// The Counting-tree is a pure count sketch of the data: cell counts are
// additive, so trees built over disjoint chunks of a dataset can be merged
// into the tree of the union — the natural substrate for distributing the
// paper's single data scan over shards — and a built tree can be saved
// and reloaded so repeated analyses (different alpha, soft membership,
// intrinsic dimension) skip the scan entirely.
//
// Binary layout (little-endian host order):
//   magic "MRTR" | u32 version | u32 d | u32 H | u64 total_points
//   | u64 node_count | per node: i32 level, d*u64 base_coords,
//     u64 cell_count, per cell: u64 loc, u32 n, i32 child_node,
//     d*u32 half
//
// The layout predates the SoA arena storage and is kept byte-for-byte
// stable: a node's cells are written from its packed arena slice, which
// is exactly the per-node creation order the old per-node vectors held.

#pragma once

#include <string>

#include "core/counting_tree.h"

namespace mrcc {

/// Work counters of one MergeTree call. `cells_merged` — cells present in
/// both trees whose counts were combined (the merge "conflicts" a sharded
/// build pays for); `cells_created` / `nodes_created` — structure that
/// existed only in the source tree and was appended to the destination.
/// Returned by value from MergeTree; a shard fold sums them with +=.
struct MergeTreeStats {
  uint64_t cells_merged = 0;
  uint64_t cells_created = 0;
  uint64_t nodes_created = 0;

  MergeTreeStats& operator+=(const MergeTreeStats& o) {
    cells_merged += o.cells_merged;
    cells_created += o.cells_created;
    nodes_created += o.nodes_created;
    return *this;
  }
};

/// Serializes `tree` into the binary layout above (usedCell flags are not
/// persisted — they are search state, not data). The returned bytes are
/// what SaveTree writes and what a shard artifact embeds ahead of its
/// checksum trailer (src/dist/shard_io.h).
std::string SerializeTree(const CountingTree& tree);

/// Parses a tree from bytes produced by SerializeTree. `path` appears in
/// error messages only. Every failure is an IOError naming the section
/// that failed and the byte offset where it did, in the fs.h truncation
/// style: "truncated tree file <path>: <section> ends at byte <end>
/// (needed <n> bytes at offset <start>)" for short reads, and
/// "bad <section> in <path> at byte <start>: <why>" for parseable bytes
/// with impossible values.
[[nodiscard]] Result<CountingTree> ParseTree(const std::string& bytes,
                                             const std::string& path);

/// Writes `tree` to `path` atomically (temp file + fsync + rename; see
/// WriteFileAtomic) — a crash mid-save leaves the previous file intact,
/// never a torn tree.
[[nodiscard]] Status SaveTree(const CountingTree& tree,
                              const std::string& path);

/// Reads a tree written by SaveTree.
[[nodiscard]] Result<CountingTree> LoadTree(const std::string& path);

/// Merges `other` into `tree`: afterwards `tree` equals the tree built
/// over the concatenation of both datasets. Requires equal
/// dimensionality and resolution count. `other` is left untouched.
/// Returns this merge's work counters.
[[nodiscard]] Result<MergeTreeStats> MergeTree(CountingTree* tree,
                                 const CountingTree& other);

/// True when the two trees hold identical counts everywhere (structure
/// may differ in node ordering; comparison is by cell coordinates).
bool TreesEquivalent(const CountingTree& a, const CountingTree& b);

}  // namespace mrcc

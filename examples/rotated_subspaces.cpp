// Demonstrates MrCC on clusters in *arbitrarily oriented* subspaces
// (paper Fig. 1c-d and the rotated-group experiment, Fig. 5p-r).
//
// The same dataset is clustered twice: once with axis-parallel subspace
// clusters and once after rotating the whole space four times in random
// planes. Because MrCC tracks density rather than axis alignment, its
// Quality should move only marginally — that is the paper's rotation-
// robustness claim, contrasted here with PROCLUS, a strictly axis-
// parallel method.
//
//   ./examples/rotated_subspaces [num_points]

#include <cstdio>
#include <cstdlib>

#include "baselines/proclus.h"
#include "core/mrcc.h"
#include "data/generator.h"
#include "eval/quality.h"

namespace {

double RunQuality(mrcc::SubspaceClusterer& method,
                  const mrcc::LabeledDataset& dataset) {
  mrcc::Result<mrcc::Clustering> r = method.Cluster(dataset.data);
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", method.name().c_str(),
                 r.status().ToString().c_str());
    return 0.0;
  }
  return mrcc::EvaluateClustering(*r, dataset.truth).quality;
}

}  // namespace

int main(int argc, char** argv) {
  mrcc::SyntheticConfig config;
  config.name = "rotated-demo";
  config.num_points = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  config.num_dims = 10;
  config.num_clusters = 6;
  config.noise_fraction = 0.15;
  config.min_cluster_dims = 7;
  config.max_cluster_dims = 9;
  config.seed = 51;

  mrcc::Result<mrcc::LabeledDataset> plain = mrcc::GenerateSynthetic(config);
  config.num_rotations = 4;  // "Rotated 4 times in random planes/degrees".
  mrcc::Result<mrcc::LabeledDataset> rotated =
      mrcc::GenerateSynthetic(config);
  if (!plain.ok() || !rotated.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }

  mrcc::MrCC mrcc_method;
  mrcc::ProclusParams proclus_params;
  proclus_params.num_clusters = config.num_clusters;
  proclus_params.avg_dims = 8;
  mrcc::Proclus proclus(proclus_params);

  std::printf("%zu points, %zu dims, %zu clusters, 15%% noise\n\n",
              config.num_points, config.num_dims, config.num_clusters);
  std::printf("%-10s %18s %18s %10s\n", "method", "axis-parallel Q",
              "rotated Q", "drop");
  for (mrcc::SubspaceClusterer* method :
       {static_cast<mrcc::SubspaceClusterer*>(&mrcc_method),
        static_cast<mrcc::SubspaceClusterer*>(&proclus)}) {
    const double q_plain = RunQuality(*method, *plain);
    const double q_rot = RunQuality(*method, *rotated);
    std::printf("%-10s %18.4f %18.4f %9.1f%%\n", method->name().c_str(),
                q_plain, q_rot,
                q_plain > 0 ? 100.0 * (q_plain - q_rot) / q_plain : 0.0);
  }
  std::printf(
      "\nMrCC follows the density structure and barely moves; the axis-"
      "parallel k-medoid drops once the subspaces are rotated.\n");
  return 0;
}

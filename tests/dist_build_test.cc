// End-to-end suite of dist/sharded_build.h, all in-process: the sharded
// pipeline must equal the single-process MrCC::Run bit for bit, resume
// must skip completed shards, and shard loss (deleted or corrupt
// artifacts, injected load faults) must degrade to rebuilds — never to
// wrong results.

#include "dist/sharded_build.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "common/fs.h"
#include "common/metrics.h"
#include "core/tree_io.h"
#include "data/dataset_io.h"
#include "test_util.h"

namespace mrcc {
namespace dist {
namespace {

void ExpectSameResults(const MrCCResult& a, const MrCCResult& b) {
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  EXPECT_EQ(a.beta_to_cluster, b.beta_to_cluster);
  ASSERT_EQ(a.beta_clusters.size(), b.beta_clusters.size());
  for (size_t i = 0; i < a.beta_clusters.size(); ++i) {
    EXPECT_EQ(a.beta_clusters[i].lower, b.beta_clusters[i].lower);
    EXPECT_EQ(a.beta_clusters[i].upper, b.beta_clusters[i].upper);
    EXPECT_EQ(a.beta_clusters[i].relevant, b.beta_clusters[i].relevant);
    EXPECT_EQ(a.beta_clusters[i].level, b.beta_clusters[i].level);
    EXPECT_EQ(a.beta_clusters[i].center_count, b.beta_clusters[i].center_count);
  }
  ASSERT_EQ(a.clustering.clusters.size(), b.clustering.clusters.size());
  for (size_t c = 0; c < a.clustering.clusters.size(); ++c) {
    EXPECT_EQ(a.clustering.clusters[c].relevant_axes,
              b.clustering.clusters[c].relevant_axes);
  }
}

class DistBuildTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = testing::SmallClustered(2500, 6, 2, 23).data;
    dir_ = ::testing::TempDir() + "mrcc_dist_build_test";
    (void)std::system(("rm -rf " + dir_ + " && mkdir -p " + dir_).c_str());
    options_.dataset_path = dir_ + "/points.bin";
    options_.work_dir = dir_;
    options_.num_shards = 4;
    options_.params.num_threads = 1;
    ASSERT_TRUE(SaveBinary(data_, options_.dataset_path).ok());
    Result<MrCCResult> baseline = MrCC(options_.params).Run(data_);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    baseline_ = std::make_unique<MrCCResult>(std::move(*baseline));
    ASSERT_GT(baseline_->clustering.NumClusters(), 0u);
  }
  void TearDown() override {
    fp::DisarmAll();
    (void)std::system(("rm -rf " + dir_).c_str());
  }

  int64_t Metric(const char* name) {
    return MetricsRegistry::Global().counter(name).value();
  }

  Dataset data_;
  std::string dir_;
  ShardedBuildOptions options_;
  std::unique_ptr<MrCCResult> baseline_;
};

TEST_F(DistBuildTest, ShardedBuildMatchesSingleProcessBitForBit) {
  Result<MrCCResult> sharded = RunShardedBuild(options_);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectSameResults(*baseline_, *sharded);
}

TEST_F(DistBuildTest, ShardCountNeverChangesResults) {
  for (const int shards : {1, 3, 7}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedBuildOptions options = options_;
    options.work_dir = dir_ + "/s" + std::to_string(shards);
    (void)std::system(("mkdir -p " + options.work_dir).c_str());
    options.num_shards = shards;
    Result<MrCCResult> sharded = RunShardedBuild(options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ExpectSameResults(*baseline_, *sharded);
  }
}

TEST_F(DistBuildTest, MergedTreeEqualsSerialTree) {
  Result<BuildManifest> manifest = PrepareManifest(options_);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  for (size_t i = 0; i < manifest->shards.size(); ++i) {
    ASSERT_TRUE(BuildShard(options_, *manifest, i).ok());
  }
  Result<CountingTree> merged = MergeShardTrees(options_, *manifest);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  Result<CountingTree> serial =
      CountingTree::Build(data_, options_.params.num_resolutions);
  ASSERT_TRUE(serial.ok());
  // Byte equality, not just equivalence: the sharded path must reproduce
  // the serial tree's serialized form exactly (the golden contract).
  EXPECT_EQ(SerializeTree(*merged), SerializeTree(*serial));
}

TEST_F(DistBuildTest, ResumeSkipsCompletedShards) {
  Result<BuildManifest> manifest = PrepareManifest(options_);
  ASSERT_TRUE(manifest.ok());
  for (size_t i = 0; i < manifest->shards.size(); ++i) {
    ASSERT_TRUE(BuildShard(options_, *manifest, i).ok());
  }
  // Arm the publication failpoint: a re-run that tried to rebuild any
  // shard would fail its artifact write. All four must skip.
  fp::ScopedArm arm("shard.write");
  for (size_t i = 0; i < manifest->shards.size(); ++i) {
    EXPECT_TRUE(BuildShard(options_, *manifest, i).ok()) << "shard " << i;
  }
  fp::DisarmAll();
  Result<BuildManifest> resumed = LoadManifest(ManifestPath(dir_));
  ASSERT_TRUE(resumed.ok());
  for (const ShardPlan& shard : resumed->shards) {
    EXPECT_TRUE(shard.done);
  }
}

TEST_F(DistBuildTest, DeletedArtifactIsRebuiltWithIdenticalResults) {
  Result<MrCCResult> first = RunShardedBuild(options_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(std::remove(ShardArtifactPath(dir_, 2).c_str()), 0);
  const int64_t rebuilds_before = Metric("shard.rebuilds");
  Result<BuildManifest> manifest = LoadManifest(ManifestPath(dir_));
  ASSERT_TRUE(manifest.ok());
  Result<MrCCResult> recovered = MergeShards(options_, *manifest);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectSameResults(*baseline_, *recovered);
  EXPECT_EQ(Metric("shard.rebuilds"), rebuilds_before + 1);
}

TEST_F(DistBuildTest, CorruptArtifactIsRebuiltWithIdenticalResults) {
  Result<MrCCResult> first = RunShardedBuild(options_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Rot one byte in the middle of shard 1's artifact. The checksum
  // rejects it, the merger rebuilds that partition.
  const std::string victim = ShardArtifactPath(dir_, 1);
  Result<std::string> bytes = ReadFileToString(victim);
  ASSERT_TRUE(bytes.ok());
  std::string rotted = *bytes;
  rotted[rotted.size() / 2] =
      static_cast<char>(rotted[rotted.size() / 2] ^ 0x20);
  ASSERT_TRUE(WriteFileAtomic(victim, rotted).ok());

  const int64_t rebuilds_before = Metric("shard.rebuilds");
  const int64_t checksum_before = Metric("shard.checksum_failures");
  Result<BuildManifest> manifest = LoadManifest(ManifestPath(dir_));
  ASSERT_TRUE(manifest.ok());
  Result<MrCCResult> recovered = MergeShards(options_, *manifest);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectSameResults(*baseline_, *recovered);
  EXPECT_EQ(Metric("shard.rebuilds"), rebuilds_before + 1);
  EXPECT_GT(Metric("shard.checksum_failures"), checksum_before);
}

TEST_F(DistBuildTest, ArtifactFromWrongPartitionIsRebuilt) {
  Result<BuildManifest> manifest = PrepareManifest(options_);
  ASSERT_TRUE(manifest.ok());
  for (size_t i = 0; i < manifest->shards.size(); ++i) {
    ASSERT_TRUE(BuildShard(options_, *manifest, i).ok());
  }
  // Swap two artifacts: both verify (checksums are fine) but each now
  // covers the wrong partition; the range cross-check must catch it.
  const std::string a = ShardArtifactPath(dir_, 0);
  const std::string b = ShardArtifactPath(dir_, 1);
  ASSERT_EQ(std::rename(a.c_str(), (a + ".swap").c_str()), 0);
  ASSERT_EQ(std::rename(b.c_str(), a.c_str()), 0);
  ASSERT_EQ(std::rename((a + ".swap").c_str(), b.c_str()), 0);

  const int64_t rebuilds_before = Metric("shard.rebuilds");
  Result<MrCCResult> recovered = MergeShards(options_, *manifest);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectSameResults(*baseline_, *recovered);
  EXPECT_EQ(Metric("shard.rebuilds"), rebuilds_before + 2);
}

TEST_F(DistBuildTest, TransientLoadFaultIsRetriedNotRebuilt) {
  Result<MrCCResult> first = RunShardedBuild(options_);
  ASSERT_TRUE(first.ok());
  Result<BuildManifest> manifest = LoadManifest(ManifestPath(dir_));
  ASSERT_TRUE(manifest.ok());

  const int64_t rebuilds_before = Metric("shard.rebuilds");
  const int64_t retries_before = Metric("merge.retries");
  // Fire on the first hit only: shard 0's first load attempt fails, the
  // retry succeeds, and no rebuild happens.
  fp::ScopedArm arm("merge.shard_load=1");
  Result<CountingTree> tree = LoadOrRebuildShard(options_, *manifest, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(Metric("shard.rebuilds"), rebuilds_before);
  EXPECT_EQ(Metric("merge.retries"), retries_before + 1);
}

TEST_F(DistBuildTest, PersistentLoadFaultFallsBackToRebuild) {
  Result<MrCCResult> first = RunShardedBuild(options_);
  ASSERT_TRUE(first.ok());
  Result<BuildManifest> manifest = LoadManifest(ManifestPath(dir_));
  ASSERT_TRUE(manifest.ok());

  ShardedBuildOptions options = options_;
  options.retry.max_attempts = 2;  // Keep the exhausted-retries path quick.
  const int64_t rebuilds_before = Metric("shard.rebuilds");
  fp::ScopedArm arm("merge.shard_load");  // Every load attempt fails.
  Result<MrCCResult> recovered = MergeShards(options, *manifest);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectSameResults(*baseline_, *recovered);
  EXPECT_EQ(Metric("shard.rebuilds"),
            rebuilds_before +
                static_cast<int64_t>(manifest->shards.size()));
}

TEST_F(DistBuildTest, ThreadedMergePhasesMatchSerial) {
  ShardedBuildOptions options = options_;
  options.params.num_threads = 3;
  Result<MrCCResult> sharded = RunShardedBuild(options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectSameResults(*baseline_, *sharded);
}

TEST_F(DistBuildTest, BuildShardRejectsOutOfRangeIndex) {
  Result<BuildManifest> manifest = PrepareManifest(options_);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(BuildShard(options_, *manifest, 99).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DistBuildTest, BuildShardTreeRejectsBadRange) {
  EXPECT_EQ(BuildShardTree(options_, 10, 10).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      BuildShardTree(options_, 0, data_.NumPoints() + 1).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dist
}  // namespace mrcc

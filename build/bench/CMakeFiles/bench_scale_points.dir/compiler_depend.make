# Empty compiler generated dependencies file for bench_scale_points.
# This may be replaced when dependencies are built.

// Soft cluster membership on top of MrCC's hard partition.
//
// The journal successor of MrCC (Halite, TKDE 2013) extends the method
// with *soft clustering*: instead of a hard label, every point receives a
// membership degree per cluster, letting overlapping populations and
// borderline points be analyzed probabilistically. This module implements
// that extension over the MrCC result: each correlation cluster is
// summarized by a per-axis Gaussian profile fitted to its members
// (restricted to its relevant axes), and memberships are the normalized
// Gaussian responsibilities, with a floor that sends far-away points to
// noise (an all-zero row).

#pragma once

#include <cstddef>
#include <vector>

#include "core/mrcc.h"
#include "data/dataset.h"

namespace mrcc {

struct SoftMembershipOptions {
  /// A point whose best unnormalized responsibility falls below
  /// exp(-0.5 * max_sigma^2 distance) is treated as noise. Expressed as a
  /// Mahalanobis-like radius in per-axis standard deviations.
  double max_sigmas = 4.0;

  /// Variance floor, preventing degenerate spikes on constant axes.
  double min_stddev = 1e-4;
};

/// Soft assignment of every point to the correlation clusters.
class SoftClustering {
 public:
  SoftClustering(size_t num_points, size_t num_clusters)
      : num_points_(num_points),
        num_clusters_(num_clusters),
        memberships_(num_points * num_clusters, 0.0) {}

  size_t num_points() const { return num_points_; }
  size_t num_clusters() const { return num_clusters_; }

  /// Membership of point i in cluster c, in [0, 1]. Rows sum to 1 for
  /// covered points and to 0 for noise points.
  double membership(size_t i, size_t c) const {
    return memberships_[i * num_clusters_ + c];
  }
  double& membership(size_t i, size_t c) {
    return memberships_[i * num_clusters_ + c];
  }

  /// Hard labels implied by the soft assignment (argmax; kNoiseLabel for
  /// all-zero rows).
  std::vector<int> HardLabels() const;

  /// Shannon entropy (nats) of point i's membership row — 0 for clear-cut
  /// points, larger for borderline ones. Noise rows return 0.
  double Entropy(size_t i) const;

 private:
  size_t num_points_;
  size_t num_clusters_;
  std::vector<double> memberships_;
};

/// Computes soft memberships from a finished MrCC run on the same data.
/// Per cluster, a diagonal Gaussian is fitted over its relevant axes from
/// its hard members; every point then receives normalized
/// responsibilities. Clusters with fewer than 2 members keep only their
/// hard members.
[[nodiscard]] Result<SoftClustering> ComputeSoftMembership(
    const MrCCResult& result, const Dataset& data,
    const SoftMembershipOptions& options = SoftMembershipOptions());

}  // namespace mrcc


file(REMOVE_RECURSE
  "CMakeFiles/intrinsic_dimension_test.dir/intrinsic_dimension_test.cc.o"
  "CMakeFiles/intrinsic_dimension_test.dir/intrinsic_dimension_test.cc.o.d"
  "intrinsic_dimension_test"
  "intrinsic_dimension_test.pdb"
  "intrinsic_dimension_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intrinsic_dimension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

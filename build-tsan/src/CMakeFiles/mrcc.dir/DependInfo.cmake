
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/clique.cc" "src/CMakeFiles/mrcc.dir/baselines/clique.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/baselines/clique.cc.o.d"
  "/root/repo/src/baselines/clusterer.cc" "src/CMakeFiles/mrcc.dir/baselines/clusterer.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/baselines/clusterer.cc.o.d"
  "/root/repo/src/baselines/doc.cc" "src/CMakeFiles/mrcc.dir/baselines/doc.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/baselines/doc.cc.o.d"
  "/root/repo/src/baselines/epch.cc" "src/CMakeFiles/mrcc.dir/baselines/epch.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/baselines/epch.cc.o.d"
  "/root/repo/src/baselines/harp.cc" "src/CMakeFiles/mrcc.dir/baselines/harp.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/baselines/harp.cc.o.d"
  "/root/repo/src/baselines/kmeans.cc" "src/CMakeFiles/mrcc.dir/baselines/kmeans.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/baselines/kmeans.cc.o.d"
  "/root/repo/src/baselines/lac.cc" "src/CMakeFiles/mrcc.dir/baselines/lac.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/baselines/lac.cc.o.d"
  "/root/repo/src/baselines/orclus.cc" "src/CMakeFiles/mrcc.dir/baselines/orclus.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/baselines/orclus.cc.o.d"
  "/root/repo/src/baselines/p3c.cc" "src/CMakeFiles/mrcc.dir/baselines/p3c.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/baselines/p3c.cc.o.d"
  "/root/repo/src/baselines/proclus.cc" "src/CMakeFiles/mrcc.dir/baselines/proclus.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/baselines/proclus.cc.o.d"
  "/root/repo/src/baselines/statpc.cc" "src/CMakeFiles/mrcc.dir/baselines/statpc.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/baselines/statpc.cc.o.d"
  "/root/repo/src/baselines/tuning_grid.cc" "src/CMakeFiles/mrcc.dir/baselines/tuning_grid.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/baselines/tuning_grid.cc.o.d"
  "/root/repo/src/common/linalg.cc" "src/CMakeFiles/mrcc.dir/common/linalg.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/common/linalg.cc.o.d"
  "/root/repo/src/common/mdl.cc" "src/CMakeFiles/mrcc.dir/common/mdl.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/common/mdl.cc.o.d"
  "/root/repo/src/common/memory.cc" "src/CMakeFiles/mrcc.dir/common/memory.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/common/memory.cc.o.d"
  "/root/repo/src/common/parallel.cc" "src/CMakeFiles/mrcc.dir/common/parallel.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/common/parallel.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/mrcc.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/mrcc.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/mrcc.dir/common/status.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/common/status.cc.o.d"
  "/root/repo/src/common/union_find.cc" "src/CMakeFiles/mrcc.dir/common/union_find.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/common/union_find.cc.o.d"
  "/root/repo/src/core/beta_cluster_finder.cc" "src/CMakeFiles/mrcc.dir/core/beta_cluster_finder.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/core/beta_cluster_finder.cc.o.d"
  "/root/repo/src/core/cluster_builder.cc" "src/CMakeFiles/mrcc.dir/core/cluster_builder.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/core/cluster_builder.cc.o.d"
  "/root/repo/src/core/counting_tree.cc" "src/CMakeFiles/mrcc.dir/core/counting_tree.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/core/counting_tree.cc.o.d"
  "/root/repo/src/core/intrinsic_dimension.cc" "src/CMakeFiles/mrcc.dir/core/intrinsic_dimension.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/core/intrinsic_dimension.cc.o.d"
  "/root/repo/src/core/laplacian_mask.cc" "src/CMakeFiles/mrcc.dir/core/laplacian_mask.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/core/laplacian_mask.cc.o.d"
  "/root/repo/src/core/mrcc.cc" "src/CMakeFiles/mrcc.dir/core/mrcc.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/core/mrcc.cc.o.d"
  "/root/repo/src/core/soft_membership.cc" "src/CMakeFiles/mrcc.dir/core/soft_membership.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/core/soft_membership.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/CMakeFiles/mrcc.dir/core/streaming.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/core/streaming.cc.o.d"
  "/root/repo/src/core/tree_io.cc" "src/CMakeFiles/mrcc.dir/core/tree_io.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/core/tree_io.cc.o.d"
  "/root/repo/src/data/catalog.cc" "src/CMakeFiles/mrcc.dir/data/catalog.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/data/catalog.cc.o.d"
  "/root/repo/src/data/data_source.cc" "src/CMakeFiles/mrcc.dir/data/data_source.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/data/data_source.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/mrcc.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/CMakeFiles/mrcc.dir/data/dataset_io.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/data/dataset_io.cc.o.d"
  "/root/repo/src/data/dataset_reader.cc" "src/CMakeFiles/mrcc.dir/data/dataset_reader.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/data/dataset_reader.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/CMakeFiles/mrcc.dir/data/generator.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/data/generator.cc.o.d"
  "/root/repo/src/data/pca.cc" "src/CMakeFiles/mrcc.dir/data/pca.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/data/pca.cc.o.d"
  "/root/repo/src/data/result_io.cc" "src/CMakeFiles/mrcc.dir/data/result_io.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/data/result_io.cc.o.d"
  "/root/repo/src/eval/analysis.cc" "src/CMakeFiles/mrcc.dir/eval/analysis.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/eval/analysis.cc.o.d"
  "/root/repo/src/eval/measurement.cc" "src/CMakeFiles/mrcc.dir/eval/measurement.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/eval/measurement.cc.o.d"
  "/root/repo/src/eval/quality.cc" "src/CMakeFiles/mrcc.dir/eval/quality.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/eval/quality.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/mrcc.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/mrcc.dir/eval/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Reproduces Fig. 5g-i: scalability in the number of points (50k..250k,
// everything else fixed at the 14d base dataset).
//
// Expected shape: MrCC/LAC/EPCH Quality stays high and flat; MrCC time and
// memory grow linearly with the point count and MrCC stays fastest.
//
// Beyond the paper, this bench also reports the parallel engine's thread
// scaling: MrCC is rerun on the largest dataset of the group at 1, 2, 4
// and 8 threads (override with MRCC_BENCH_THREADS=t1,t2,...) and the
// per-stage timings plus the speedup over the serial run are printed.
// Labels are asserted bit-identical to the serial run at every thread
// count — the engine's determinism contract.
//
// It also compares the data backends (--source=memory|chunked|mmap,
// default: all three) on the largest dataset: the same MrCC run over the
// in-memory buffer, bounded-buffer file reads and an mmap'ed file, each
// swept over the pipelined-scan depths (--read_ahead=D0,D1, default 0,2 =
// synchronous vs. double buffering) with the page cache dropped before
// every file-backed run so the axis measures device reads. Labels are
// asserted identical across every backend × depth and one BenchEntry per
// cell — distinguished by BenchEntry::source / BenchEntry::read_ahead —
// lands in the BenchRecord.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "common/fs.h"
#include "core/mrcc.h"
#include "data/catalog.h"
#include "data/data_source.h"
#include "data/dataset_io.h"
#include "eval/quality.h"

namespace {

void RunThreadScaling(const mrcc::bench::BenchOptions& options) {
  using namespace mrcc;

  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (const char* raw = std::getenv("MRCC_BENCH_THREADS")) {
    thread_counts.clear();
    for (const std::string& token : bench::SplitCsvList(raw)) {
      const int t = std::atoi(token.c_str());
      if (t >= 0) thread_counts.push_back(t);
    }
    if (thread_counts.empty()) return;
  }

  // The largest dataset of the group is where parallelism matters most.
  std::vector<SyntheticConfig> configs = PointsGroupConfigs(options.scale);
  size_t largest = 0;
  for (size_t i = 1; i < configs.size(); ++i) {
    if (configs[i].num_points > configs[largest].num_points) largest = i;
  }
  const LabeledDataset dataset =
      bench::MustGenerate(configs[largest], options.data_dir);

  std::printf("\n== MrCC thread scaling on %s (%zu points x %zu dims) ==\n",
              dataset.name.c_str(), dataset.data.NumPoints(),
              dataset.data.NumDims());
  std::printf("%8s %10s %10s %10s %10s %10s %9s\n", "threads", "tree(s)",
              "merge(s)", "search(s)", "label(s)", "total(s)", "speedup");

  std::vector<int> serial_labels;
  double serial_core_seconds = 0.0;
  for (int threads : thread_counts) {
    MrCCParams params;
    params.num_threads = threads;
    Result<MrCCResult> r = MrCC(params).Run(dataset.data);
    if (!r.ok()) {
      std::fprintf(stderr, "MrCC(threads=%d): %s\n", threads,
                   r.status().ToString().c_str());
      return;
    }
    // tree build + β-search: the two stages the paper's O(η·H·d) claim
    // covers and the ones the engine shards.
    const double core_seconds =
        r->stats.tree_build_seconds + r->stats.beta_search_seconds;
    if (serial_labels.empty()) {
      serial_labels = r->clustering.labels;
      serial_core_seconds = core_seconds;
    } else if (r->clustering.labels != serial_labels) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: threads=%d labels differ from "
                   "the serial run\n",
                   threads);
      std::exit(1);
    }
    std::printf("%8d %10.3f %10.3f %10.3f %10.3f %10.3f %8.2fx\n",
                r->stats.num_threads, r->stats.tree_build_seconds,
                r->stats.tree_merge_seconds, r->stats.beta_search_seconds,
                r->stats.cluster_build_seconds, r->stats.total_seconds,
                core_seconds > 0.0 ? serial_core_seconds / core_seconds
                                   : 0.0);
  }
}

void RunSourceComparison(const mrcc::bench::BenchOptions& options,
                         mrcc::bench::BenchRecorder* recorder) {
  using namespace mrcc;

  std::vector<std::string> sources = {"memory", "chunked", "mmap"};
  if (!options.source.empty()) sources = {options.source};

  std::vector<SyntheticConfig> configs = PointsGroupConfigs(options.scale);
  size_t largest = 0;
  for (size_t i = 1; i < configs.size(); ++i) {
    if (configs[i].num_points > configs[largest].num_points) largest = i;
  }
  const LabeledDataset dataset =
      bench::MustGenerate(configs[largest], options.data_dir);
  const std::string bin_path =
      (options.data_dir.empty() ? std::string("/tmp") : options.data_dir) +
      "/mrcc_scale_points_source.bin";
  if (Status s = SaveBinary(dataset.data, bin_path); !s.ok()) {
    std::fprintf(stderr, "source comparison: %s\n", s.ToString().c_str());
    return;
  }

  std::printf("\n== MrCC data backends on %s (%zu points x %zu dims) ==\n",
              dataset.name.c_str(), dataset.data.NumPoints(),
              dataset.data.NumDims());
  std::printf("%8s %6s %10s %10s %12s %8s %10s\n", "source", "ahead",
              "tree(s)", "total(s)", "chunks", "stalls", "quality");

  std::vector<int> reference_labels;
  for (const std::string& source_name : sources) {
    for (size_t depth : options.read_ahead) {
      MrCCParams params;
      params.read_ahead_chunks = depth;
      Result<MrCCResult> r(Status::Internal("unset"));
      if (source_name == "memory") {
        const MemoryDataSource source(dataset.data);
        r = MrCC(params).Run(source);
      } else if (source_name == "chunked" || source_name == "mmap") {
        // Cold-cache: without this, the second depth's run would read the
        // first one's page cache and the axis would measure nothing.
        if (Status s = DropFileCache(bin_path); !s.ok()) {
          std::fprintf(stderr, "drop cache (best effort): %s\n",
                       s.ToString().c_str());
        }
        if (source_name == "chunked") {
          Result<ChunkedBinaryDataSource> source =
              ChunkedBinaryDataSource::Open(bin_path);
          r = source.ok() ? MrCC(params).Run(*source)
                          : Result<MrCCResult>(source.status());
        } else {
          Result<MmapFileDataSource> source =
              MmapFileDataSource::Open(bin_path);
          r = source.ok() ? MrCC(params).Run(*source)
                          : Result<MrCCResult>(source.status());
        }
      } else {
        std::fprintf(stderr, "unknown --source=%s (memory|chunked|mmap)\n",
                     source_name.c_str());
        std::exit(2);
      }

      BenchEntry entry;
      entry.method = "MrCC";
      entry.dataset = dataset.name;
      entry.source = source_name;
      entry.read_ahead = static_cast<int64_t>(depth);
      if (!r.ok()) {
        entry.error = r.status().ToString();
        std::fprintf(stderr, "MrCC(source=%s, read_ahead=%zu): %s\n",
                     source_name.c_str(), depth, entry.error.c_str());
        recorder->Add(entry);
        continue;
      }
      if (reference_labels.empty()) {
        reference_labels = r->clustering.labels;
      } else if (r->clustering.labels != reference_labels) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: source=%s read_ahead=%zu "
                     "labels differ\n",
                     source_name.c_str(), depth);
        std::exit(1);
      }
      const QualityReport quality =
          EvaluateClustering(r->clustering, dataset.truth);
      entry.completed = true;
      entry.seconds = r->stats.total_seconds;
      entry.quality = quality.quality;
      entry.subspace_quality = quality.subspace_quality;
      entry.clusters_found = r->clustering.NumClusters();
      recorder->Add(entry);
      std::printf("%8s %6zu %10.3f %10.3f %12llu %8llu %10.3f\n",
                  source_name.c_str(), depth, r->stats.tree_build_seconds,
                  r->stats.total_seconds,
                  static_cast<unsigned long long>(r->stats.chunks_scanned),
                  static_cast<unsigned long long>(r->stats.prefetch_stalls),
                  quality.quality);
    }
  }
  std::remove(bin_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrcc::bench;
  const BenchOptions options = ParseOptions(argc, argv);
  BenchRecorder recorder("scale_points", options);
  PrintHeader("points scaling (50k..250k)", "Fig. 5g-i", options);
  RunMatrix("scale_points", mrcc::PointsGroupConfigs(options.scale), options,
            &recorder);
  RunThreadScaling(options);
  RunSourceComparison(options, &recorder);
  return recorder.Finish();
}

# Empty dependencies file for p3c_test.
# This may be replaced when dependencies are built.

// ORCLUS — Finding Generalized Projected Clusters in High Dimensional
// Spaces (Aggarwal & Yu, SIGMOD 2000).
//
// Included as the classic method for clusters in *arbitrarily oriented*
// subspaces (the paper's §II discusses it as the successor of PROCLUS able
// to handle linear combinations of axes — the rotated-data experiments).
// The algorithm starts from k0 >> k seeds and alternates:
//   assign    each point joins the seed with the smallest distance in the
//             seed's current subspace (the eigenvectors of the cluster's
//             covariance with the *smallest* eigenvalues — where the
//             cluster is thin);
//   redefine  per-cluster subspaces from the new members;
//   merge     the closest cluster pairs, shrinking the seed count toward k
//             while the subspace dimensionality decays toward l.
//
// Reported clusters carry oriented subspaces, so axis-aligned relevant
// axes are not well-defined; like LAC, ORCLUS is excluded from Subspaces
// Quality and reports per-axis weights (energy of the subspace basis).

#pragma once

#include <cstdint>

#include "core/subspace_clusterer.h"

namespace mrcc {

struct OrclusParams {
  /// Final number of clusters.
  size_t num_clusters = 5;

  /// Target subspace dimensionality l (0 = half the data dims).
  size_t subspace_dims = 0;

  /// Initial seed multiplier: k0 = seed_factor * k.
  size_t seed_factor = 5;

  /// Seed-count decay per iteration (the paper's alpha = 0.5).
  double merge_factor = 0.5;

  uint64_t seed = 7;
};

class Orclus : public SubspaceClusterer {
 public:
  explicit Orclus(OrclusParams params = OrclusParams());

  std::string name() const override { return "ORCLUS"; }
  [[nodiscard]] Result<Clustering> Cluster(const Dataset& data) override;

 private:
  OrclusParams params_;
};

}  // namespace mrcc


# Empty dependencies file for statpc_test.
# This may be replaced when dependencies are built.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace mrcc {
namespace {

// Every test leaves the registry clean so later tests (and other suites
// in the same binary) see the production disarmed state.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fp::DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedReturnsOkAndCountsNothing) {
  EXPECT_TRUE(fp::Maybe("tree.build.alloc").ok());
  EXPECT_FALSE(fp::MaybeTrue("source.read.truncate"));
  // The fast path does not touch the registry, so no hits are recorded.
  EXPECT_EQ(fp::HitCount("tree.build.alloc"), 0u);
}

TEST_F(FailpointTest, AlwaysTriggerFiresOnEveryHit) {
  fp::ScopedArm arm("tree.build.alloc");
  for (int i = 0; i < 3; ++i) {
    const Status status = fp::Maybe("tree.build.alloc");
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_NE(status.message().find("tree.build.alloc"), std::string::npos);
  }
  EXPECT_EQ(fp::HitCount("tree.build.alloc"), 3u);
  // Other sites stay disarmed.
  EXPECT_TRUE(fp::Maybe("tree.merge.alloc").ok());
}

TEST_F(FailpointTest, NthOnlyTriggerFiresExactlyOnce) {
  fp::ScopedArm arm("source.scan=2");
  EXPECT_TRUE(fp::Maybe("source.scan").ok());
  EXPECT_EQ(fp::Maybe("source.scan").code(), StatusCode::kIOError);
  EXPECT_TRUE(fp::Maybe("source.scan").ok());
  EXPECT_EQ(fp::HitCount("source.scan"), 3u);
}

TEST_F(FailpointTest, FromNthTriggerFiresFromThereOn) {
  fp::ScopedArm arm("result.write=3+");
  EXPECT_TRUE(fp::Maybe("result.write").ok());
  EXPECT_TRUE(fp::Maybe("result.write").ok());
  EXPECT_FALSE(fp::Maybe("result.write").ok());
  EXPECT_FALSE(fp::Maybe("result.write").ok());
}

TEST_F(FailpointTest, ProbabilityTriggerIsDeterministicInSeedAndHit) {
  std::vector<bool> first;
  {
    fp::ScopedArm arm("source.read.transient=p0.5@42");
    for (int i = 0; i < 64; ++i) {
      first.push_back(fp::MaybeTrue("source.read.transient"));
    }
  }
  std::vector<bool> second;
  {
    fp::ScopedArm arm("source.read.transient=p0.5@42");
    for (int i = 0; i < 64; ++i) {
      second.push_back(fp::MaybeTrue("source.read.transient"));
    }
  }
  EXPECT_EQ(first, second);
  // p = 0.5 over 64 hits fires at least once and spares at least once
  // with overwhelming probability for any fixed seed.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FailpointTest, ProbabilityExtremesFireNeverAndAlways) {
  {
    fp::ScopedArm arm("budget.memory=p0@1");
    for (int i = 0; i < 16; ++i) EXPECT_FALSE(fp::MaybeTrue("budget.memory"));
  }
  {
    fp::ScopedArm arm("budget.memory=p1@1");
    for (int i = 0; i < 16; ++i) EXPECT_TRUE(fp::MaybeTrue("budget.memory"));
  }
}

TEST_F(FailpointTest, ArmResetsHitCounts) {
  ASSERT_TRUE(fp::Arm("source.open=10").ok());
  EXPECT_TRUE(fp::Maybe("source.open").ok());
  EXPECT_EQ(fp::HitCount("source.open"), 1u);
  ASSERT_TRUE(fp::Arm("source.open=1").ok());
  EXPECT_EQ(fp::HitCount("source.open"), 0u);
  EXPECT_FALSE(fp::Maybe("source.open").ok());
}

TEST_F(FailpointTest, ArmMultipleSitesAtOnce) {
  ASSERT_TRUE(fp::Arm("tree.build.alloc,beta.search.alloc=2").ok());
  EXPECT_FALSE(fp::Maybe("tree.build.alloc").ok());
  EXPECT_TRUE(fp::Maybe("beta.search.alloc").ok());
  EXPECT_FALSE(fp::Maybe("beta.search.alloc").ok());
}

TEST_F(FailpointTest, BadSpecsAreRejectedWithoutArmingAnything) {
  EXPECT_EQ(fp::Arm("no.such.site").code(),  // lint-allow: failpoint-site
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fp::Arm("tree.build.alloc=bogus").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fp::Arm("tree.build.alloc=0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fp::Arm("tree.build.alloc=p2@1").code(),
            StatusCode::kInvalidArgument);
  // An invalid item anywhere in the list arms nothing (atomic arming).
  EXPECT_FALSE(  // lint-allow: failpoint-site
      fp::Arm("tree.build.alloc,no.such.site").ok());
  EXPECT_TRUE(fp::Maybe("tree.build.alloc").ok());
}

TEST_F(FailpointTest, DisarmAllRestoresTheFastPath) {
  ASSERT_TRUE(fp::Arm("tree.build.alloc").ok());
  EXPECT_FALSE(fp::Maybe("tree.build.alloc").ok());
  fp::DisarmAll();
  EXPECT_TRUE(fp::Maybe("tree.build.alloc").ok());
  EXPECT_EQ(fp::HitCount("tree.build.alloc"), 0u);
}

TEST_F(FailpointTest, AllSitesIsClosedAndCodesMatchTheFailureModel) {
  const std::vector<std::string> sites = fp::AllSites();
  EXPECT_GE(sites.size(), 13u);
  const auto has = [&sites](const char* name) {
    return std::find(sites.begin(), sites.end(), name) != sites.end();
  };
  EXPECT_TRUE(has("source.open"));
  EXPECT_TRUE(has("tree.build.alloc"));
  EXPECT_TRUE(has("pool.spawn"));
  EXPECT_TRUE(has("budget.deadline"));
  // Site naming taxonomy maps onto error categories (DESIGN.md §11).
  EXPECT_EQ(fp::SiteCode("source.open"), StatusCode::kIOError);
  EXPECT_EQ(fp::SiteCode("tree.build.alloc"),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(fp::SiteCode("budget.deadline"), StatusCode::kDeadlineExceeded);
  // Every registered site can be armed by name.
  for (const std::string& site : sites) {
    EXPECT_TRUE(fp::Arm(site).ok()) << site;
  }
  fp::DisarmAll();
}

}  // namespace
}  // namespace mrcc

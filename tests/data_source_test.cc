#include "data/data_source.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "data/dataset_io.h"
#include "test_util.h"

namespace mrcc {
namespace {

std::vector<std::vector<double>> Drain(DataSource::Cursor& cursor) {
  std::vector<std::vector<double>> out;
  std::span<const double> point;
  while (cursor.Next(&point)) {
    out.emplace_back(point.begin(), point.end());
  }
  return out;
}

TEST(MemoryDataSourceTest, ScansAllPointsInOrder) {
  Dataset d = testing::UniformDataset(100, 4, 11);
  MemoryDataSource source(d);
  EXPECT_EQ(source.NumPoints(), 100u);
  EXPECT_EQ(source.NumDims(), 4u);
  EXPECT_EQ(source.Name(), "memory");

  auto cursor = source.ScanAll();
  ASSERT_TRUE(cursor.ok());
  const auto points = Drain(**cursor);
  ASSERT_EQ(points.size(), 100u);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(points[i][j], d(i, j)) << i << "," << j;
    }
  }
  EXPECT_TRUE((*cursor)->status().ok());
}

TEST(MemoryDataSourceTest, ScanRangeIsHalfOpen) {
  Dataset d = testing::UniformDataset(50, 3, 12);
  MemoryDataSource source(d);
  auto cursor = source.Scan(10, 20);
  ASSERT_TRUE(cursor.ok());
  const auto points = Drain(**cursor);
  ASSERT_EQ(points.size(), 10u);
  EXPECT_DOUBLE_EQ(points[0][0], d(10, 0));
  EXPECT_DOUBLE_EQ(points[9][0], d(19, 0));
}

TEST(MemoryDataSourceTest, EmptyRangeAndBadRange) {
  Dataset d = testing::UniformDataset(10, 2, 13);
  MemoryDataSource source(d);
  auto empty = source.Scan(5, 5);
  ASSERT_TRUE(empty.ok());
  std::span<const double> point;
  EXPECT_FALSE((*empty)->Next(&point));

  EXPECT_FALSE(source.Scan(5, 11).ok());  // end > NumPoints.
  EXPECT_FALSE(source.Scan(7, 5).ok());   // begin > end.
  EXPECT_EQ(source.Scan(5, 11).status().code(), StatusCode::kOutOfRange);
}

TEST(BinaryFileDataSourceTest, MatchesMemorySource) {
  Dataset d = testing::UniformDataset(300, 6, 14);
  const std::string path = ::testing::TempDir() + "mrcc_source_eq.bin";
  ASSERT_TRUE(SaveBinary(d, path).ok());

  Result<BinaryFileDataSource> file = BinaryFileDataSource::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->NumPoints(), 300u);
  EXPECT_EQ(file->NumDims(), 6u);
  EXPECT_EQ(file->Name(), path);

  MemoryDataSource memory(d);
  // Whole-scan equivalence plus several sub-ranges, including the ends.
  const std::pair<size_t, size_t> ranges[] = {
      {0, 300}, {0, 1}, {299, 300}, {100, 200}, {42, 43}, {150, 150}};
  for (const auto& [begin, end] : ranges) {
    auto from_file = file->Scan(begin, end);
    auto from_memory = memory.Scan(begin, end);
    ASSERT_TRUE(from_file.ok() && from_memory.ok());
    EXPECT_EQ(Drain(**from_file), Drain(**from_memory))
        << "range [" << begin << ", " << end << ")";
    EXPECT_TRUE((*from_file)->status().ok());
  }
  std::remove(path.c_str());
}

TEST(BinaryFileDataSourceTest, ConcurrentCursorsSeeTheirOwnSlices) {
  Dataset d = testing::UniformDataset(1000, 3, 15);
  const std::string path = ::testing::TempDir() + "mrcc_source_mt.bin";
  ASSERT_TRUE(SaveBinary(d, path).ok());
  Result<BinaryFileDataSource> file = BinaryFileDataSource::Open(path);
  ASSERT_TRUE(file.ok());

  // Four threads scan disjoint slices through independent cursors; every
  // value must land at its own global index.
  std::vector<double> first_axis(1000, -1.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const size_t begin = 250 * static_cast<size_t>(t);
      const size_t end = begin + 250;
      auto cursor = file->Scan(begin, end);
      ASSERT_TRUE(cursor.ok());
      std::span<const double> point;
      size_t i = begin;
      while ((*cursor)->Next(&point)) first_axis[i++] = point[0];
      EXPECT_EQ(i, end);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_DOUBLE_EQ(first_axis[i], d(i, 0)) << "point " << i;
  }
  std::remove(path.c_str());
}

TEST(BinaryFileDataSourceTest, MissingFileFailsOnOpen) {
  EXPECT_FALSE(BinaryFileDataSource::Open("/nonexistent/x.bin").ok());
}

TEST(BinaryFileDataSourceTest, TruncatedFileFailsWithTheByteOffset) {
  // Regression: a partially-written dataset used to scan as zeros past
  // the cut. Now Open rejects it, naming where the data ran out.
  Dataset d = testing::UniformDataset(200, 4, 18);
  const std::string path = ::testing::TempDir() + "mrcc_truncated.bin";
  ASSERT_TRUE(SaveBinary(d, path).ok());
  // Cut the file mid-way through the point payload.
  const uint64_t cut = 24 + 100 * 4 * sizeof(double) + 3;
  ASSERT_EQ(truncate(path.c_str(), static_cast<off_t>(cut)), 0);

  const Result<BinaryFileDataSource> source = BinaryFileDataSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kIOError);
  // The message names the byte where data ends and what was promised.
  EXPECT_NE(source.status().message().find(std::to_string(cut)),
            std::string::npos)
      << source.status().ToString();
  EXPECT_NE(source.status().message().find("200 points"), std::string::npos)
      << source.status().ToString();
  std::remove(path.c_str());
}

TEST(BinaryFileDataSourceTest, HeaderOnlyTruncationFailsOnOpen) {
  Dataset d = testing::UniformDataset(50, 2, 19);
  const std::string path = ::testing::TempDir() + "mrcc_header_cut.bin";
  ASSERT_TRUE(SaveBinary(d, path).ok());
  ASSERT_EQ(truncate(path.c_str(), 10), 0);  // Inside the header.
  const Result<BinaryFileDataSource> source = BinaryFileDataSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(BinaryFileDataSourceTest, TransientReadErrorIsRetriedToSuccess) {
  // One injected EAGAIN on the first read: the retry loop in common/fs
  // absorbs it and the scan returns data identical to the clean scan.
  Dataset d = testing::UniformDataset(120, 3, 20);
  const std::string path = ::testing::TempDir() + "mrcc_transient.bin";
  ASSERT_TRUE(SaveBinary(d, path).ok());
  Result<BinaryFileDataSource> file = BinaryFileDataSource::Open(path);
  ASSERT_TRUE(file.ok());

  auto clean = file->ScanAll();
  ASSERT_TRUE(clean.ok());
  const auto expected = Drain(**clean);

  fp::ScopedArm arm("source.read.transient=1");
  auto retried = file->ScanAll();
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(Drain(**retried), expected);
  EXPECT_TRUE((*retried)->status().ok())
      << (*retried)->status().ToString();
  EXPECT_GT(fp::HitCount("source.read.transient"), 0u);
  std::remove(path.c_str());
}

TEST(BinaryFileDataSourceTest, ExhaustedRetriesSurfaceAsIOError) {
  Dataset d = testing::UniformDataset(60, 3, 22);
  const std::string path = ::testing::TempDir() + "mrcc_exhausted.bin";
  ASSERT_TRUE(SaveBinary(d, path).ok());
  Result<BinaryFileDataSource> file = BinaryFileDataSource::Open(path);
  ASSERT_TRUE(file.ok());

  fp::ScopedArm arm("source.read.transient");  // Every attempt fails.
  // Scan re-reads the header through the same retrying layer, so with a
  // persistent fault the cursor never comes up — and the error names the
  // exhausted retry budget.
  auto cursor = file->ScanAll();
  ASSERT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code(), StatusCode::kIOError);
  EXPECT_NE(cursor.status().message().find("retries"), std::string::npos)
      << cursor.status().ToString();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// ScanChunks: the out-of-core delivery contract (data_source.h file
// comment) — chunks in order, range covered exactly once, identical
// values on every backend at every chunk size.

/// Replays a ScanChunks call into a flat vector, checking ordering and
/// chunk-size bounds along the way.
std::vector<double> DrainChunks(const DataSource& source, size_t begin,
                                size_t end, size_t chunk_points) {
  std::vector<double> out;
  size_t expect_first = begin;
  const Status status = source.ScanChunks(
      begin, end, chunk_points,
      [&](size_t first, std::span<const double> values) {
        EXPECT_EQ(first, expect_first) << "chunks out of order or overlapping";
        EXPECT_GT(values.size(), 0u);
        EXPECT_EQ(values.size() % source.NumDims(), 0u);
        EXPECT_LE(values.size() / source.NumDims(), chunk_points);
        expect_first = first + values.size() / source.NumDims();
        out.insert(out.end(), values.begin(), values.end());
        return Status::OK();
      });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(expect_first, end) << "range not covered";
  return out;
}

TEST(ScanChunksTest, EveryBackendDeliversIdenticalChunkStreams) {
  Dataset d = testing::UniformDataset(257, 5, 23);
  const std::string path = ::testing::TempDir() + "mrcc_chunks.bin";
  ASSERT_TRUE(SaveBinary(d, path).ok());

  MemoryDataSource memory(d);
  Result<BinaryFileDataSource> file = BinaryFileDataSource::Open(path);
  ASSERT_TRUE(file.ok());
  // 96-byte buffer: holds 2 points of 5 doubles, so every chunk request
  // spans several block reads — the re-blocking seam.
  Result<ChunkedBinaryDataSource> chunked =
      ChunkedBinaryDataSource::Open(path, 96);
  ASSERT_TRUE(chunked.ok());
  EXPECT_EQ(chunked->buffer_points(), 2u);
  Result<MmapFileDataSource> mapped = MmapFileDataSource::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_TRUE(mapped->using_mmap());

  const std::vector<double> expected = DrainChunks(memory, 0, 257, 257);
  ASSERT_EQ(expected.size(), 257u * 5u);
  for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}, size_t{4096}}) {
    SCOPED_TRACE("chunk_points=" + std::to_string(chunk));
    EXPECT_EQ(DrainChunks(memory, 0, 257, chunk), expected);
    EXPECT_EQ(DrainChunks(*file, 0, 257, chunk), expected);
    EXPECT_EQ(DrainChunks(*chunked, 0, 257, chunk), expected);
    EXPECT_EQ(DrainChunks(*mapped, 0, 257, chunk), expected);
  }
  // Sub-ranges, including both ends.
  for (const auto& [begin, end] :
       {std::pair<size_t, size_t>{0, 1}, {256, 257}, {100, 200}}) {
    SCOPED_TRACE("range [" + std::to_string(begin) + ", " +
                 std::to_string(end) + ")");
    const std::vector<double> want(expected.begin() + begin * 5,
                                   expected.begin() + end * 5);
    EXPECT_EQ(DrainChunks(*chunked, begin, end, 3), want);
    EXPECT_EQ(DrainChunks(*mapped, begin, end, 3), want);
  }
  std::remove(path.c_str());
}

TEST(ScanChunksTest, CallbackErrorAbortsTheScanUnchanged) {
  Dataset d = testing::UniformDataset(40, 2, 24);
  MemoryDataSource source(d);
  size_t calls = 0;
  const Status status = source.ScanChunks(
      0, 40, 10, [&](size_t, std::span<const double>) {
        ++calls;
        return calls == 2 ? Status::Internal("stop here") : Status::OK();
      });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "stop here");
  EXPECT_EQ(calls, 2u);  // Nothing delivered past the failure.
}

TEST(ScanChunksTest, ArgumentsAreValidated) {
  Dataset d = testing::UniformDataset(10, 2, 25);
  MemoryDataSource source(d);
  const auto ignore = [](size_t, std::span<const double>) {
    return Status::OK();
  };
  EXPECT_EQ(source.ScanChunks(0, 11, 4, ignore).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(source.ScanChunks(7, 5, 4, ignore).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(source.ScanChunks(0, 10, 0, ignore).code(),
            StatusCode::kInvalidArgument);
  // An empty range is a no-op, not an error.
  EXPECT_TRUE(source.ScanChunks(5, 5, 4, ignore).ok());
}

TEST(ScanChunksTest, ChunkReadFaultSurfacesFromEveryBackend) {
  Dataset d = testing::UniformDataset(30, 3, 26);
  const std::string path = ::testing::TempDir() + "mrcc_chunk_fault.bin";
  ASSERT_TRUE(SaveBinary(d, path).ok());
  Result<MmapFileDataSource> mapped = MmapFileDataSource::Open(path);
  ASSERT_TRUE(mapped.ok());
  MemoryDataSource memory(d);

  fp::ScopedArm arm("source.chunk.read");
  const auto ignore = [](size_t, std::span<const double>) {
    return Status::OK();
  };
  EXPECT_EQ(memory.ScanChunks(0, 30, 8, ignore).code(),
            StatusCode::kIOError);
  EXPECT_EQ(mapped->ScanChunks(0, 30, 8, ignore).code(),
            StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(MmapFileDataSourceTest, CursorScanMatchesMemory) {
  Dataset d = testing::UniformDataset(128, 4, 27);
  const std::string path = ::testing::TempDir() + "mrcc_mmap_scan.bin";
  ASSERT_TRUE(SaveBinary(d, path).ok());
  Result<MmapFileDataSource> mapped = MmapFileDataSource::Open(path);
  ASSERT_TRUE(mapped.ok());
  MemoryDataSource memory(d);

  for (const auto& [begin, end] :
       {std::pair<size_t, size_t>{0, 128}, {0, 1}, {127, 128}, {30, 90}}) {
    auto from_map = mapped->Scan(begin, end);
    auto from_memory = memory.Scan(begin, end);
    ASSERT_TRUE(from_map.ok() && from_memory.ok());
    EXPECT_EQ(Drain(**from_map), Drain(**from_memory))
        << "range [" << begin << ", " << end << ")";
  }
  std::remove(path.c_str());
}

TEST(MmapFileDataSourceTest, FallbackServesTheSameBytes) {
  Dataset d = testing::UniformDataset(90, 3, 28);
  const std::string path = ::testing::TempDir() + "mrcc_mmap_fb.bin";
  ASSERT_TRUE(SaveBinary(d, path).ok());

  Result<MmapFileDataSource> mapped = MmapFileDataSource::Open(path);
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(mapped->using_mmap());
  const std::vector<double> expected = DrainChunks(*mapped, 0, 90, 11);

  Result<MmapFileDataSource> fallback(Status::Internal("unset"));
  {
    fp::ScopedArm arm("source.mmap");
    fallback = MmapFileDataSource::Open(path);
  }
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_FALSE(fallback->using_mmap());
  EXPECT_EQ(DrainChunks(*fallback, 0, 90, 11), expected);
  auto cursor = fallback->ScanAll();
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(Drain(**cursor).size(), 90u);
  std::remove(path.c_str());
}

TEST(DatasetReaderSeekTest, SeekToJumpsToPoint) {
  Dataset d = testing::UniformDataset(64, 5, 16);
  const std::string path = ::testing::TempDir() + "mrcc_seek.bin";
  ASSERT_TRUE(SaveBinary(d, path).ok());
  Result<BinaryDatasetReader> reader = BinaryDatasetReader::Open(path);
  ASSERT_TRUE(reader.ok());

  std::vector<double> point(5);
  ASSERT_TRUE(reader->SeekTo(40).ok());
  EXPECT_EQ(reader->position(), 40u);
  ASSERT_TRUE(reader->Next(point));
  EXPECT_DOUBLE_EQ(point[2], d(40, 2));

  // Seeking to the end is allowed and yields no further points.
  ASSERT_TRUE(reader->SeekTo(64).ok());
  EXPECT_FALSE(reader->Next(point));
  EXPECT_TRUE(reader->status().ok());

  EXPECT_EQ(reader->SeekTo(65).code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mrcc

# Empty dependencies file for proclus_test.
# This may be replaced when dependencies are built.

// Command-line clustering of a user-supplied CSV file — the tool a
// downstream user reaches for first.
//
//   ./examples/cluster_csv input.csv [output.csv] [alpha] [H] [threads]
//
// The input is one point per row, comma-separated numeric values. Data is
// min-max normalized to [0,1)^d, wrapped in the DataSource API and
// clustered with the parallel MrCC engine (threads = 0 uses every
// hardware thread); the labels are written as an extra trailing column of
// the output CSV (-1 = noise).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/mrcc.h"
#include "data/data_source.h"
#include "data/dataset_io.h"
#include "data/result_io.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr, "usage: %s input.csv [output.csv] [alpha] [H] [threads]\n",
        argv[0]);
    return 2;
  }
  const std::string input = argv[1];
  const std::string output = argc > 2 ? argv[2] : input + ".clustered.csv";

  mrcc::MrCCParams params;
  if (argc > 3) params.alpha = std::strtod(argv[3], nullptr);
  if (argc > 4) params.num_resolutions = std::atoi(argv[4]);
  params.num_threads = argc > 5 ? std::atoi(argv[5]) : 0;

  mrcc::Result<mrcc::Dataset> data = mrcc::LoadCsv(input);
  if (!data.ok()) {
    std::fprintf(stderr, "load: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu points x %zu dims from %s\n", data->NumPoints(),
              data->NumDims(), input.c_str());
  data->NormalizeToUnitCube();

  // The unified entry point: any DataSource backend runs the same
  // pipeline. Here the data is in memory; see streaming_soft for the
  // out-of-core binary-file backend.
  const mrcc::MemoryDataSource source(*data);
  mrcc::MrCC method(params);
  mrcc::Result<mrcc::MrCCResult> result = method.Run(source);
  if (!result.ok()) {
    std::fprintf(stderr, "MrCC: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const mrcc::Clustering& clustering = result->clustering;
  std::printf(
      "found %zu correlation clusters (%zu noise points) in %.3fs "
      "on %d threads\n",
      clustering.NumClusters(), clustering.NumNoisePoints(),
      result->stats.total_seconds, result->stats.num_threads);
  for (size_t c = 0; c < clustering.NumClusters(); ++c) {
    std::string axes;
    for (size_t j = 0; j < data->NumDims(); ++j) {
      if (clustering.clusters[c].relevant_axes[j]) {
        if (!axes.empty()) axes += ',';
        axes += std::to_string(j);
      }
    }
    std::printf("  cluster %zu: %zu points, relevant axes {%s}\n", c,
                clustering.Members(static_cast<int>(c)).size(), axes.c_str());
  }

  mrcc::Status st = mrcc::SaveCsv(*data, output, &clustering.labels);
  if (!st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("labeled data written to %s\n", output.c_str());

  // Full machine-readable result (clusters, beta-boxes, stats) as JSON.
  const std::string json_path = output + ".json";
  st = mrcc::WriteJsonFile(mrcc::MrCCResultToJson(*result), json_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save json: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("full result written to %s\n", json_path.c_str());

  // Visual report: projections with clusters colored and boxes overlaid.
  const std::string report_path = output + ".html";
  st = mrcc::WriteRunReport(*data, *result, "MrCC run: " + input,
                            report_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save report: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("visual report written to %s\n", report_path.c_str());
  return 0;
}

// Dataset serialization: CSV (interchange) and a compact binary format.
//
// CSV layout: one point per row, `d` comma-separated values; when a
// clustering is saved alongside, a trailing integer column carries the
// cluster label (-1 = noise).
//
// Binary layout (little-endian host order):
//   magic "MRCC" | u32 version | u64 num_points | u64 num_dims
//   | num_points * num_dims f64 values | u8 has_labels
//   | (if has_labels) num_points i32 labels

#pragma once

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace mrcc {

/// Writes `data` as CSV. When `labels` is non-null it must have one entry
/// per point and is appended as the last column.
[[nodiscard]] Status SaveCsv(const Dataset& data, const std::string& path,
               const std::vector<int>* labels = nullptr);

/// Reads a CSV file written by SaveCsv (or any numeric CSV). When
/// `has_label_column` is true the last column is parsed into `labels`.
[[nodiscard]] Result<Dataset> LoadCsv(const std::string& path,
                        bool has_label_column = false,
                        std::vector<int>* labels = nullptr);

/// Writes the binary format described above.
[[nodiscard]] Status SaveBinary(const Dataset& data, const std::string& path,
                  const std::vector<int>* labels = nullptr);

/// Reads the binary format. Labels are returned through `labels` when
/// present in the file and `labels` is non-null.
[[nodiscard]] Result<Dataset> LoadBinary(const std::string& path,
                           std::vector<int>* labels = nullptr);

}  // namespace mrcc


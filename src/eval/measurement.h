// Experiment harness: runs one clustering method on one labeled dataset
// and measures everything the paper's figures report — wall-clock time,
// peak heap memory, Quality and Subspaces Quality.

#pragma once

#include <string>
#include <vector>

#include "core/subspace_clusterer.h"
#include "data/dataset.h"
#include "eval/quality.h"

namespace mrcc {

/// Everything measured in one (method, dataset) run.
struct RunMeasurement {
  std::string method;
  std::string dataset;

  /// False when the method failed or timed out; `error` carries the cause.
  bool completed = false;
  std::string error;

  double seconds = 0.0;
  /// Peak extra heap while the method ran (what Fig. 5's KB column shows).
  int64_t peak_heap_bytes = 0;

  size_t clusters_found = 0;
  QualityReport quality;
};

/// Runs `method` on `dataset` with an optional cooperative time budget
/// (0 = unlimited) and scores the result against the dataset's truth.
RunMeasurement MeasureRun(SubspaceClusterer& method,
                          const LabeledDataset& dataset,
                          double time_budget_seconds = 0.0);

/// Same, but scores against a flat class labeling (real-data experiment).
RunMeasurement MeasureRunAgainstClasses(SubspaceClusterer& method,
                                        const Dataset& data,
                                        const std::vector<int>& class_labels,
                                        const std::string& dataset_name,
                                        double time_budget_seconds = 0.0);

/// Renders a row like the paper's tables: method, quality, KB, seconds.
std::string FormatMeasurementRow(const RunMeasurement& m);

/// CSV helpers for the bench binaries.
std::string MeasurementCsvHeader();
std::string MeasurementCsvRow(const RunMeasurement& m);

}  // namespace mrcc


# Empty compiler generated dependencies file for evaluate_labels.
# This may be replaced when dependencies are built.

// STATPC — Finding Non-Redundant, Statistically Significant Regions in
// High Dimensional Data (Moise & Sander, KDD 2008).
//
// The sixth competitor of the paper's related work: it formulates
// projected clustering as the search for a reduced, non-redundant set of
// axis-parallel hyper-rectangles that contain significantly more points
// than expected under uniformity. The original authors' code could not
// finish "within a week even for the smallest dataset" in the paper's
// evaluation (§IV, footnote 1) — the algorithm explores candidate
// rectangles around many anchor points across dimension subsets, which is
// extremely expensive. This implementation keeps that character (it is by
// far the slowest method here and is expected to hit the bench time
// budget at scale) while remaining usable on small data:
//
//   1. For each anchor point (a deterministic sample), grow a candidate
//      rectangle greedily one dimension at a time: on each added
//      dimension the rectangle tightens to a quantile window around the
//      anchor, keeping the dimension only if the observed support beats
//      the Binomial(n, volume) tail at alpha_0.
//   2. Candidates are ranked by significance; a greedy set cover keeps
//      rectangles that explain at least min_new_fraction new points,
//      yielding the non-redundant result set.
//   3. Points inside a kept rectangle take its cluster; the rest is noise.

#pragma once

#include <cstdint>

#include "core/subspace_clusterer.h"

namespace mrcc {

struct StatpcParams {
  /// Significance level alpha_0 of the rectangle test.
  double alpha0 = 1e-10;

  /// Number of anchor points examined (uniform deterministic sample).
  /// The cost is roughly anchors * d^2 * eta.
  size_t num_anchors = 200;

  /// Half-width of the quantile window placed around the anchor on each
  /// candidate dimension, as a fraction of the value range.
  double window = 0.06;

  /// A kept rectangle must explain at least this fraction of eta as
  /// previously unexplained points.
  double min_new_fraction = 0.01;

  uint64_t seed = 7;
};

class Statpc : public SubspaceClusterer {
 public:
  explicit Statpc(StatpcParams params = StatpcParams());

  std::string name() const override { return "STATPC"; }
  [[nodiscard]] Result<Clustering> Cluster(const Dataset& data) override;

 private:
  StatpcParams params_;
};

}  // namespace mrcc

